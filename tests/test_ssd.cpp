// Unit tests for the storage layer: blobs, page accounting, the device
// model (channels, sequential discount), the page cache, and async I/O.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "ssd/async_io.hpp"
#include "ssd/page_cache.hpp"
#include "ssd/storage.hpp"

namespace mlvc {
namespace {

ssd::DeviceConfig small_pages() {
  ssd::DeviceConfig d;
  d.page_size = 4_KiB;
  return d;
}

TEST(Storage, BlobRoundTrip) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  const std::string payload = "hello multilog";
  blob.append(payload.data(), payload.size());
  EXPECT_EQ(blob.size(), payload.size());

  std::string back(payload.size(), '\0');
  blob.read(0, back.data(), back.size());
  EXPECT_EQ(back, payload);
}

TEST(Storage, ReadPastEndThrows) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  char c = 'x';
  blob.append(&c, 1);
  EXPECT_THROW(blob.read(0, &c, 2), Error);
  EXPECT_THROW(blob.read(5, &c, 1), Error);
}

TEST(Storage, WriteExtendsAndOverwrites) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::uint32_t v = 1;
  blob.write(100, &v, sizeof(v));
  EXPECT_EQ(blob.size(), 104u);
  v = 2;
  blob.write(100, &v, sizeof(v));
  EXPECT_EQ(blob.size(), 104u);
  std::uint32_t back = 0;
  blob.read(100, &back, sizeof(back));
  EXPECT_EQ(back, 2u);
}

TEST(Storage, TruncateShrinks) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<char> data(10000, 'z');
  blob.append(data.data(), data.size());
  blob.truncate(100);
  EXPECT_EQ(blob.size(), 100u);
  char c;
  EXPECT_THROW(blob.read(100, &c, 1), Error);
}

TEST(Storage, PageAccountingCountsTouchedPages) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kCsrColIdx);
  std::vector<char> data(16_KiB, 'x');  // 4 pages
  blob.append(data.data(), data.size());
  auto snap = storage.stats().snapshot();
  EXPECT_EQ(snap[ssd::IoCategory::kCsrColIdx].pages_written, 4u);

  // A 100-byte read straddling a page boundary costs 2 pages.
  char buf[100];
  blob.read(4_KiB - 50, buf, 100);
  snap = storage.stats().snapshot();
  EXPECT_EQ(snap[ssd::IoCategory::kCsrColIdx].pages_read, 2u);
  EXPECT_EQ(snap[ssd::IoCategory::kCsrColIdx].bytes_read, 100u);
}

TEST(Storage, ConcurrentAppendsDoNotOverlap) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  constexpr int kThreads = 8, kPerThread = 200;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::uint64_t value =
              (static_cast<std::uint64_t>(t) << 32) | i;
          blob.append(&value, sizeof(value));
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(blob.size(), sizeof(std::uint64_t) * kThreads * kPerThread);
  // Every written value must be present exactly once.
  std::vector<std::uint64_t> values(kThreads * kPerThread);
  blob.read(0, values.data(), values.size() * sizeof(values[0]));
  std::sort(values.begin(), values.end());
  EXPECT_EQ(std::unique(values.begin(), values.end()), values.end());
}

TEST(Storage, BlobNamespacing) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  storage.create_blob("csr/0/colidx", ssd::IoCategory::kCsrColIdx);
  storage.create_blob("csr/1/colidx", ssd::IoCategory::kCsrColIdx);
  EXPECT_TRUE(storage.has_blob("csr/0/colidx"));
  EXPECT_TRUE(storage.has_blob("csr/1/colidx"));
  EXPECT_FALSE(storage.has_blob("csr/2/colidx"));
  EXPECT_THROW(storage.open_blob("csr/2/colidx"), InvalidArgument);
  storage.remove_blob("csr/0/colidx");
  EXPECT_FALSE(storage.has_blob("csr/0/colidx"));
}

TEST(Storage, CreateBlobTruncatesExisting) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& a = storage.create_blob("a", ssd::IoCategory::kMisc);
  char c = 'x';
  a.append(&c, 1);
  ssd::Blob& b = storage.create_blob("a", ssd::IoCategory::kMisc);
  EXPECT_EQ(b.size(), 0u);
}

TEST(Storage, TypedHelpers) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<std::uint32_t> values = {1, 2, 3, 4, 5};
  blob.append_span<std::uint32_t>(values);
  EXPECT_EQ(blob.element_count<std::uint32_t>(), 5u);
  const auto back = blob.read_vector<std::uint32_t>(1, 3);
  EXPECT_EQ(back, (std::vector<std::uint32_t>{2, 3, 4}));
}

// ---- DeviceModel -----------------------------------------------------------

TEST(DeviceModel, ChannelsAccumulateIndependently) {
  ssd::DeviceConfig cfg;
  cfg.num_channels = 4;
  cfg.page_read_us = 100;
  cfg.sequential_factor = 1.0;
  ssd::DeviceModel dev(cfg);
  // All pages to the same (blob, page) -> one channel: serial time.
  for (int i = 0; i < 10; ++i) dev.record(1, 0, /*device=*/0, false, 1.0);
  EXPECT_DOUBLE_EQ(dev.modeled_seconds(), 10 * 100e-6);
  dev.reset();
  // Consecutive pages stripe across channels: parallel time.
  for (std::uint64_t p = 0; p < 8; ++p) dev.record(1, p, /*device=*/0, false, 1.0);
  EXPECT_DOUBLE_EQ(dev.modeled_seconds(), 2 * 100e-6);  // 8 pages / 4 channels
}

TEST(DeviceModel, SequentialDiscountApplied) {
  ssd::DeviceConfig cfg;
  cfg.page_size = 4_KiB;
  cfg.num_channels = 1;
  cfg.page_read_us = 100;
  cfg.sequential_factor = 0.5;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), cfg);
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<char> data(16_KiB, 'x');
  blob.append(data.data(), data.size());  // 4 pages: 1 full + 3 discounted
  const double write_time = storage.device().modeled_seconds();
  const double expected_w = (1.0 + 3 * 0.5) * cfg.page_write_us * 1e-6;
  EXPECT_NEAR(write_time, expected_w, 1e-9);

  const auto before = storage.device().snapshot();
  blob.read(0, data.data(), data.size());
  const double read_time = storage.device().modeled_seconds_between(
      before, storage.device().snapshot());
  EXPECT_NEAR(read_time, (1.0 + 3 * 0.5) * 100e-6, 1e-9);
}

TEST(DeviceModel, SeparateCallsPayFullFirstPage) {
  ssd::DeviceConfig cfg;
  cfg.page_size = 4_KiB;
  cfg.num_channels = 1;
  cfg.page_read_us = 100;
  cfg.sequential_factor = 0.5;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), cfg);
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<char> data(16_KiB, 'x');
  blob.append(data.data(), data.size());

  const auto before = storage.device().snapshot();
  char buf[64];
  for (std::uint64_t p = 0; p < 4; ++p) {
    blob.read(p * 4_KiB, buf, sizeof(buf));  // 4 separate commands
  }
  const double t = storage.device().modeled_seconds_between(
      before, storage.device().snapshot());
  EXPECT_NEAR(t, 4 * 100e-6, 1e-9);  // no discount across calls
}

TEST(DeviceModel, InvalidConfigRejected) {
  ssd::DeviceConfig cfg;
  cfg.page_size = 1000;  // not a power of two
  EXPECT_THROW(ssd::DeviceModel{cfg}, Error);
  cfg = ssd::DeviceConfig{};
  cfg.sequential_factor = 0.0;
  EXPECT_THROW(ssd::DeviceModel{cfg}, Error);
  cfg = ssd::DeviceConfig{};
  cfg.num_channels = 0;
  EXPECT_THROW(ssd::DeviceModel{cfg}, Error);
}

// ---- IoStats ---------------------------------------------------------------

TEST(IoStats, SnapshotDiff) {
  ssd::IoStats stats;
  stats.record_read(ssd::IoCategory::kShard, 5, 5000);
  const auto a = stats.snapshot();
  stats.record_read(ssd::IoCategory::kShard, 3, 3000);
  stats.record_write(ssd::IoCategory::kMessageLog, 2, 2000);
  const auto diff = stats.snapshot() - a;
  EXPECT_EQ(diff[ssd::IoCategory::kShard].pages_read, 3u);
  EXPECT_EQ(diff[ssd::IoCategory::kMessageLog].pages_written, 2u);
  EXPECT_EQ(diff.total_pages(), 5u);
}

// ---- PageCache -------------------------------------------------------------

TEST(PageCache, HitsAvoidDeviceTraffic) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<std::uint32_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(i);
  }
  blob.append(data.data(), data.size() * 4);

  ssd::PageCache cache(storage, 64_KiB);
  std::uint32_t v = 0;
  cache.read(blob, 100 * 4, &v, 4);
  EXPECT_EQ(v, 100u);
  const auto after_first = storage.stats().snapshot();
  cache.read(blob, 104 * 4, &v, 4);  // same page: must be a hit
  EXPECT_EQ(v, 104u);
  EXPECT_EQ(storage.stats().snapshot().total_pages_read(),
            after_first.total_pages_read());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCache, EvictsUnderPressure) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<char> data(64_KiB, 'x');
  blob.append(data.data(), data.size());

  ssd::PageCache cache(storage, 8_KiB);  // 2 frames of 4 KiB
  char c;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t p = 0; p < 8; ++p) {
      cache.read(blob, p * 4_KiB, &c, 1);
    }
  }
  EXPECT_GT(cache.misses(), 8u);  // capacity misses occurred
}

TEST(PageCache, CrossPageRead) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<char> data(8_KiB);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i % 251);
  }
  blob.append(data.data(), data.size());
  ssd::PageCache cache(storage, 16_KiB);
  std::vector<char> out(300);
  cache.read(blob, 4_KiB - 150, out.data(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<char>((4_KiB - 150 + i) % 251));
  }
}

TEST(PageCache, InvalidateDropsEverything) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::uint32_t v = 7;
  blob.append(&v, 4);
  ssd::PageCache cache(storage, 8_KiB);
  std::uint32_t out;
  cache.read(blob, 0, &out, 4);
  EXPECT_EQ(out, 7u);
  v = 9;
  blob.write(0, &v, 4);
  cache.read(blob, 0, &out, 4);
  EXPECT_EQ(out, 7u);  // stale: cache not invalidated yet
  cache.invalidate();
  cache.read(blob, 0, &out, 4);
  EXPECT_EQ(out, 9u);
}

// ---- AsyncIo ---------------------------------------------------------------

TEST(AsyncIo, ParallelReadsComplete) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<std::uint64_t> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i * 3;
  blob.append(data.data(), data.size() * 8);

  ssd::AsyncIo io(4);
  std::vector<std::uint64_t> out(data.size());
  ssd::IoBatch batch;
  constexpr std::size_t kChunk = 512;
  for (std::size_t off = 0; off < data.size(); off += kChunk) {
    batch.add(io.read(&blob, off * 8, out.data() + off, kChunk * 8));
  }
  batch.wait();
  EXPECT_EQ(out, data);
}

TEST(Storage, ReadMultiRoundTrip) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<std::uint32_t> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(i * 7);
  }
  blob.append(data.data(), data.size() * 4);

  // Mix of contiguous, gapped, and empty ranges in one vectored call.
  std::vector<std::uint32_t> a(100), b(200), c(50);
  std::vector<ssd::ReadOp> ops = {
      {0, a.data(), a.size() * 4},
      {400, b.data(), b.size() * 4},  // contiguous with the first
      {0, nullptr, 0},                // empty op is legal
      {20000, c.data(), c.size() * 4},
  };
  blob.read_multi(ops);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], data[i]);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], data[100 + i]);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], data[5000 + i]);
}

TEST(Storage, ReadMultiAccountsLikeScalarReads) {
  ssd::TempDir dir;
  ssd::Storage scalar_storage(dir.path() / "s", small_pages());
  ssd::Storage multi_storage(dir.path() / "m", small_pages());
  ssd::Blob& scalar_blob =
      scalar_storage.create_blob("a", ssd::IoCategory::kMisc);
  ssd::Blob& multi_blob = multi_storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<char> data(64_KiB, 'x');
  scalar_blob.append(data.data(), data.size());
  multi_blob.append(data.data(), data.size());

  const std::vector<std::pair<std::uint64_t, std::size_t>> reads = {
      {100, 5000}, {5100, 2000}, {40000, 123}, {0, 4096}};
  std::vector<char> buf(8_KiB);
  const auto s_io_before = scalar_storage.stats().snapshot();
  const auto m_io_before = multi_storage.stats().snapshot();
  const auto s_dev_before = scalar_storage.device().snapshot();
  const auto m_dev_before = multi_storage.device().snapshot();
  std::vector<ssd::ReadOp> ops;
  for (const auto& [off, len] : reads) {
    scalar_blob.read(off, buf.data(), len);
    ops.push_back({off, buf.data(), len});
  }
  multi_blob.read_multi(ops);
  const auto s_io = scalar_storage.stats().snapshot() - s_io_before;
  const auto m_io = multi_storage.stats().snapshot() - m_io_before;
  EXPECT_EQ(s_io.total_pages_read(), m_io.total_pages_read());
  EXPECT_EQ(scalar_storage.device().modeled_seconds_between(
                s_dev_before, scalar_storage.device().snapshot()),
            multi_storage.device().modeled_seconds_between(
                m_dev_before, multi_storage.device().snapshot()));
}

TEST(Storage, ReadMultiPastEndThrowsBeforeReading) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<char> data(100, 'x');
  blob.append(data.data(), data.size());
  char buf[64];
  std::vector<ssd::ReadOp> ops = {{0, buf, 64}, {80, buf, 64}};
  EXPECT_THROW(blob.read_multi(ops), Error);
}

TEST(Storage, ReserveAssignsDisjointRegions) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  const std::uint64_t first = blob.reserve(100);
  const std::uint64_t second = blob.reserve(50);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 100u);
  EXPECT_EQ(blob.size(), 150u);
  // Reserved regions accept writes and read back intact.
  std::vector<char> payload(50, 'z');
  blob.write(second, payload.data(), payload.size());
  std::vector<char> back(50);
  blob.read(second, back.data(), back.size());
  EXPECT_EQ(back, payload);
}

TEST(AsyncIo, ErrorsSurfaceOnWait) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  char c = 'x';
  blob.append(&c, 1);
  ssd::AsyncIo io(2);
  ssd::IoBatch batch;
  char buf[64];
  batch.add(io.read(&blob, 1000, buf, 64));  // past EOF
  EXPECT_THROW(batch.wait(), Error);
}

TEST(AsyncIo, WaitDrainsEveryOpBeforeThrowing) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), small_pages());
  ssd::Blob& blob = storage.create_blob("a", ssd::IoCategory::kMisc);
  std::vector<char> data(4096, 'y');
  blob.append(data.data(), data.size());
  ssd::AsyncIo io(1);  // one thread => ops complete in submission order
  ssd::IoBatch batch;
  char bad[64];
  std::vector<char> good(data.size(), '\0');
  batch.add(io.read(&blob, 100000, bad, 64));               // fails
  batch.add(io.read(&blob, 0, good.data(), good.size()));   // queued after
  EXPECT_THROW(batch.wait(), Error);
  // wait() joins the ops submitted after the failing one before rethrowing,
  // so their buffers are safe to release as soon as it returns.
  EXPECT_EQ(good, data);
}

TEST(TempDir, CreatesUniqueAndCleansUp) {
  std::filesystem::path p;
  {
    ssd::TempDir a, b;
    p = a.path();
    EXPECT_NE(a.path(), b.path());
    EXPECT_TRUE(std::filesystem::exists(a.path()));
  }
  EXPECT_FALSE(std::filesystem::exists(p));
}

}  // namespace
}  // namespace mlvc
