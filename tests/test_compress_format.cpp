// On-disk format v2 (delta+varint) property tests: the varint primitives
// over adversarial value distributions, chunk-codec round-trips for every
// payload class (varint, fixed float, padded fixed), the v2 torn-page
// funnel's tear-vs-corruption split, fused-scatter equivalence against the
// v1 grouping, stored-CSR v1/v2 equivalence, an engine v1-vs-v2 matrix, and
// checkpoint restores across format changes (including a synthesized
// pre-format-v2 version-2 image).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/pagerank.hpp"
#include "apps/wcc.hpp"
#include "common/checksum.hpp"
#include "common/varint.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/stored_csr.hpp"
#include "multilog/sort_group.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

using multilog::LogChunkHeader;
using multilog::LogChunkIndex;
using multilog::Record;
using multilog::TornPagePolicy;

/// Format-pinning tests must not be retargeted by a CI format matrix
/// (MLVC_FORMAT / MLVC_SCATTER_STAGING are re-applied by the engine at
/// construction): save + clear them, restore on exit.
class ScopedFormatEnv {
 public:
  ScopedFormatEnv() {
    for (const char* var : kVars) {
      const char* v = std::getenv(var);
      saved_.emplace_back(var, v ? std::string(v) : std::string());
      ::unsetenv(var);
    }
  }
  ~ScopedFormatEnv() {
    for (const auto& [var, value] : saved_) {
      if (value.empty()) {
        ::unsetenv(var.c_str());
      } else {
        ::setenv(var.c_str(), value.c_str(), 1);
      }
    }
  }

 private:
  static constexpr const char* kVars[] = {"MLVC_FORMAT",
                                          "MLVC_SCATTER_STAGING"};
  std::vector<std::pair<std::string, std::string>> saved_;
};

// ---- varint primitives ------------------------------------------------------

std::vector<std::uint64_t> adversarial_u64s() {
  std::vector<std::uint64_t> vs = {0, 1, 2, 0x7F, 0x80, 0xFF, 0x100};
  // Every 7-bit group boundary, where the encoded length steps up.
  for (unsigned k = 1; k < 10; ++k) {
    const std::uint64_t b = std::uint64_t{1} << (7 * k);
    vs.push_back(b - 1);
    vs.push_back(b);
    vs.push_back(b + 1);
  }
  vs.push_back(UINT32_MAX);
  vs.push_back(std::uint64_t{UINT32_MAX} + 1);
  vs.push_back(UINT64_MAX - 1);
  vs.push_back(UINT64_MAX);
  std::mt19937_64 rng(17);
  for (int i = 0; i < 2000; ++i) {
    // Spread across magnitudes: random bit width, then random value in it.
    const unsigned bits = 1 + static_cast<unsigned>(rng() % 64);
    vs.push_back(rng() >> (64 - bits));
  }
  return vs;
}

TEST(Varint, RoundTripAdversarialValues) {
  for (const std::uint64_t v : adversarial_u64s()) {
    std::vector<std::uint8_t> buf;
    const std::size_t len = put_uvarint(buf, v);
    ASSERT_EQ(len, buf.size());
    ASSERT_LE(len, kMaxVarintBytes);
    // Length = ceil(bit_width / 7), one byte minimum.
    std::size_t expect_len = 1;
    for (std::uint64_t x = v; x >= 0x80; x >>= 7) ++expect_len;
    EXPECT_EQ(len, expect_len) << "value " << v;

    // The raw-buffer encoder must agree byte for byte.
    std::uint8_t raw[kMaxVarintBytes];
    ASSERT_EQ(put_uvarint(raw, v), len);
    EXPECT_EQ(std::memcmp(raw, buf.data(), len), 0);

    const std::uint8_t* cur = buf.data();
    EXPECT_EQ(get_uvarint(&cur, buf.data() + buf.size()), v);
    EXPECT_EQ(cur, buf.data() + buf.size());

    cur = buf.data();
    std::uint64_t out = 0;
    ASSERT_TRUE(try_get_uvarint(&cur, buf.data() + buf.size(), &out));
    EXPECT_EQ(out, v);
  }
}

TEST(Varint, TruncatedValueRejected) {
  for (const std::uint64_t v :
       {std::uint64_t{0x80}, std::uint64_t{1} << 35, UINT64_MAX}) {
    std::vector<std::uint8_t> buf;
    put_uvarint(buf, v);
    // Every proper prefix must be rejected, not silently mis-decoded.
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      const std::uint8_t* cur = buf.data();
      EXPECT_THROW(get_uvarint(&cur, buf.data() + cut), Error)
          << "value " << v << " cut to " << cut << " bytes";
      cur = buf.data();
      std::uint64_t out = 0;
      EXPECT_FALSE(try_get_uvarint(&cur, buf.data() + cut, &out));
    }
  }
}

TEST(Varint, OverflowRejected) {
  // 10 continuation bytes push the shift past 64 bits.
  std::vector<std::uint8_t> runaway(11, 0x80);
  runaway.push_back(0x00);
  const std::uint8_t* cur = runaway.data();
  EXPECT_THROW(get_uvarint(&cur, runaway.data() + runaway.size()), Error);

  // Exactly 10 bytes, but the top byte carries bits above 2^64.
  std::vector<std::uint8_t> wide(9, 0x80);
  wide.push_back(0x02);
  cur = wide.data();
  EXPECT_THROW(get_uvarint(&cur, wide.data() + wide.size()), Error);
  cur = wide.data();
  std::uint64_t out = 0;
  EXPECT_FALSE(try_get_uvarint(&cur, wide.data() + wide.size(), &out));
}

TEST(Varint, ZigzagRoundTrip) {
  const std::int64_t vs[] = {0,
                             1,
                             -1,
                             63,
                             -64,
                             64,
                             -65,
                             INT32_MAX,
                             INT32_MIN,
                             INT64_MAX,
                             INT64_MIN};
  for (const std::int64_t v : vs) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes must map to small codes (that is the whole point).
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
}

TEST(Varint, DeltaBlockRoundTrip) {
  std::mt19937 rng(23);
  std::vector<std::uint32_t> values;
  std::uint32_t walk = 5000;
  for (int i = 0; i < 5000; ++i) {
    // Mostly small steps (the adjacency-like case), occasional huge jumps
    // (row restarts), plus the extremes.
    if (rng() % 64 == 0) {
      walk = static_cast<std::uint32_t>(rng());
    } else {
      walk += static_cast<std::uint32_t>(rng() % 17) - 8;
    }
    values.push_back(walk);
  }
  values.front() = 0;
  values.back() = UINT32_MAX;

  // One absolute-first stream, split into two blocks chained through `prev`
  // exactly as the CSR block encoder chains them.
  const std::size_t half = values.size() / 2;
  std::vector<std::uint8_t> buf;
  put_delta_block(buf, values.data(), half, 0, /*absolute_first=*/true);
  put_delta_block(buf, values.data() + half, values.size() - half,
                  static_cast<std::int64_t>(values[half - 1]),
                  /*absolute_first=*/false);

  std::vector<std::uint32_t> decoded(values.size());
  const std::uint8_t* cur = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  get_delta_block(&cur, end, decoded.data(), half, 0, true);
  get_delta_block(&cur, end, decoded.data() + half, values.size() - half,
                  static_cast<std::int64_t>(values[half - 1]), false);
  EXPECT_EQ(cur, end);
  EXPECT_EQ(decoded, values);
}

TEST(Varint, DeltaBlockRangeChecked) {
  // A delta that lands below zero...
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, zigzag_encode(-5));
  const std::uint8_t* cur = buf.data();
  std::uint32_t out = 0;
  EXPECT_THROW(
      get_delta_block(&cur, buf.data() + buf.size(), &out, 1, 0, false),
      Error);
  // ...and an absolute value above u32 are both corruption, not wraparound.
  buf.clear();
  put_uvarint(buf, std::uint64_t{1} << 40);
  cur = buf.data();
  EXPECT_THROW(
      get_delta_block(&cur, buf.data() + buf.size(), &out, 1, 0, true),
      Error);
}

// ---- chunk codec ------------------------------------------------------------

/// Clustered destinations in [lo, hi): a random walk with occasional jumps,
/// the shape staged sends actually produce.
std::vector<VertexId> clustered_dsts(std::size_t n, VertexId lo, VertexId hi,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<VertexId> dsts;
  dsts.reserve(n);
  VertexId cur = lo + static_cast<VertexId>(rng() % (hi - lo));
  for (std::size_t i = 0; i < n; ++i) {
    if (rng() % 97 == 0) {
      cur = lo + static_cast<VertexId>(rng() % (hi - lo));
    } else {
      const VertexId step = static_cast<VertexId>(rng() % 9);
      cur = std::min<VertexId>(hi - 1, std::max<VertexId>(lo, cur + step - 4));
    }
    dsts.push_back(cur);
  }
  return dsts;
}

template <typename Message>
std::vector<std::byte> to_bytes(const std::vector<Record<Message>>& records) {
  std::vector<std::byte> bytes(records.size() * sizeof(Record<Message>));
  std::memcpy(bytes.data(), records.data(), bytes.size());
  return bytes;
}

TEST(LogCodec, VarintPayloadRoundTripMultiChunk) {
  // > kLogChunkMaxRecords records forces several chunks.
  const std::size_t n = 10'000;
  const auto dsts = clustered_dsts(n, 100, 5000, 31);
  std::mt19937_64 rng(37);
  std::vector<Record<std::uint32_t>> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mostly small payloads (BFS depths, labels — the case varint is for),
    // salted with full-width extremes to keep the round-trip honest.
    std::uint32_t payload = static_cast<std::uint32_t>(rng() % 128);
    if (rng() % 50 == 0) payload = static_cast<std::uint32_t>(rng());
    if (rng() % 997 == 0) payload = UINT32_MAX;
    records[i] = {dsts[i], payload};
  }
  const auto raw = to_bytes(records);

  std::vector<std::uint8_t> chunks;
  multilog::encode_log_records(raw.data(), n, sizeof(Record<std::uint32_t>),
                               /*payload_varint=*/true, chunks);
  // Small integral payloads over clustered destinations must actually
  // compress, not just round-trip.
  EXPECT_LT(chunks.size(), raw.size() / 2);

  std::vector<std::byte> back;
  multilog::decode_chunks_to_records(
      std::as_bytes(std::span<const std::uint8_t>(chunks)),
      sizeof(Record<std::uint32_t>), true, back);
  ASSERT_EQ(back.size(), raw.size());
  EXPECT_EQ(std::memcmp(back.data(), raw.data(), raw.size()), 0);

  // Every chunk header respects the encoder caps.
  const auto idx = multilog::index_log_chunks(
      std::as_bytes(std::span<const std::uint8_t>(chunks)),
      TornPagePolicy::kThrow);
  EXPECT_EQ(idx.n_records(), n);
  EXPECT_GT(idx.chunk_offsets.size(), 1u);
  for (const std::size_t off : idx.chunk_offsets) {
    const auto h = multilog::read_chunk_header(chunks.data() + off);
    EXPECT_LE(h.n_records, multilog::kLogChunkMaxRecords);
    EXPECT_LE(h.body_bytes, std::size_t{0xFFFF});
  }
}

TEST(LogCodec, FixedFloatPayloadBitExact) {
  // Floats take the fixed-width fallback and must round-trip bit-exact,
  // including the bit patterns memcmp-equality would miss with ==.
  std::vector<Record<float>> records;
  const std::uint32_t patterns[] = {
      0x00000000u,  // +0.0
      0x80000000u,  // -0.0
      0x7F800000u,  // +inf
      0xFF800000u,  // -inf
      0x7FC00001u,  // qNaN with payload
      0x00000001u,  // smallest denormal
      0x3F9D70A4u,  // 1.23
  };
  VertexId dst = 10;
  for (const std::uint32_t bits : patterns) {
    float f;
    std::memcpy(&f, &bits, 4);
    records.push_back({dst++, f});
  }
  const auto raw = to_bytes(records);
  std::vector<std::uint8_t> chunks;
  multilog::encode_log_records(raw.data(), records.size(),
                               sizeof(Record<float>),
                               /*payload_varint=*/false, chunks);
  std::vector<std::byte> back;
  multilog::decode_chunks_to_records(
      std::as_bytes(std::span<const std::uint8_t>(chunks)),
      sizeof(Record<float>), false, back);
  ASSERT_EQ(back.size(), raw.size());
  EXPECT_EQ(std::memcmp(back.data(), raw.data(), raw.size()), 0);
}

TEST(LogCodec, PaddedPayloadRoundTripsByteIdentical) {
  // Record<std::uint64_t> has 4 padding bytes between dst and payload, so
  // kPayloadVarint must reject it and the fixed path must round-trip the
  // full record image byte-identically, padding included.
  static_assert(!multilog::kPayloadVarint<std::uint64_t>);
  constexpr std::size_t kRec = sizeof(Record<std::uint64_t>);
  static_assert(kRec == 16);
  const std::size_t n = 500;
  std::vector<std::byte> raw(n * kRec);
  std::mt19937_64 rng(41);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::byte>(rng());
  }
  // Destinations must be genuine u32s (any value works — the codec delta
  // stream covers the full range), which the random fill already provides.
  std::vector<std::uint8_t> chunks;
  multilog::encode_log_records(raw.data(), n, kRec, /*payload_varint=*/false,
                               chunks);
  std::vector<std::byte> back;
  multilog::decode_chunks_to_records(
      std::as_bytes(std::span<const std::uint8_t>(chunks)), kRec, false, back);
  ASSERT_EQ(back.size(), raw.size());
  EXPECT_EQ(std::memcmp(back.data(), raw.data(), raw.size()), 0);
}

TEST(LogCodec, EmptyAndConcatenatedStreams) {
  // Empty stream: zero chunks, zero records, no error.
  const auto empty = multilog::index_log_chunks({}, TornPagePolicy::kThrow);
  EXPECT_EQ(empty.n_records(), 0u);
  EXPECT_EQ(empty.valid_bytes, 0u);

  // Concatenating two valid streams is a valid stream whose record sequence
  // is the concatenation (the engine fuses interval logs this way).
  std::vector<Record<std::uint32_t>> a(300), b(77);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = {static_cast<VertexId>(i % 50), static_cast<std::uint32_t>(i)};
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = {static_cast<VertexId>(1000 + i), static_cast<std::uint32_t>(~i)};
  }
  const auto raw_a = to_bytes(a);
  const auto raw_b = to_bytes(b);
  std::vector<std::uint8_t> stream;
  multilog::encode_log_records(raw_a.data(), a.size(),
                               sizeof(Record<std::uint32_t>), true, stream);
  multilog::encode_log_records(raw_b.data(), b.size(),
                               sizeof(Record<std::uint32_t>), true, stream);
  std::vector<std::byte> back;
  multilog::decode_chunks_to_records(
      std::as_bytes(std::span<const std::uint8_t>(stream)),
      sizeof(Record<std::uint32_t>), true, back);
  ASSERT_EQ(back.size(), raw_a.size() + raw_b.size());
  EXPECT_EQ(std::memcmp(back.data(), raw_a.data(), raw_a.size()), 0);
  EXPECT_EQ(
      std::memcmp(back.data() + raw_a.size(), raw_b.data(), raw_b.size()), 0);
}

// ---- torn-page funnel -------------------------------------------------------

std::vector<std::uint8_t> two_chunk_stream() {
  std::vector<Record<std::uint32_t>> recs(multilog::kLogChunkMaxRecords + 50);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    recs[i] = {static_cast<VertexId>(i), 7};
  }
  const auto raw = to_bytes(recs);
  std::vector<std::uint8_t> stream;
  multilog::encode_log_records(raw.data(), recs.size(),
                               sizeof(Record<std::uint32_t>), true, stream);
  return stream;
}

TEST(TornFunnelV2, MidChunkTearTruncatesOrThrows) {
  const auto stream = two_chunk_stream();
  const auto whole = multilog::index_log_chunks(
      std::as_bytes(std::span<const std::uint8_t>(stream)),
      TornPagePolicy::kThrow);
  ASSERT_EQ(whole.chunk_offsets.size(), 2u);
  const std::size_t last = whole.chunk_offsets.back();

  // Cut inside the final chunk's body: a torn page, not corruption.
  const std::size_t cut = stream.size() - 3;
  const auto torn_span = std::as_bytes(
      std::span<const std::uint8_t>(stream.data(), cut));
  EXPECT_THROW(multilog::index_log_chunks(torn_span, TornPagePolicy::kThrow),
               Error);
  const auto idx =
      multilog::index_log_chunks(torn_span, TornPagePolicy::kTruncate);
  EXPECT_EQ(idx.chunk_offsets.size(), 1u);
  EXPECT_EQ(idx.n_records(), multilog::kLogChunkMaxRecords);
  EXPECT_EQ(idx.valid_bytes, last);
  EXPECT_EQ(idx.dropped_bytes, cut - last);
  // The surviving prefix decodes cleanly.
  std::vector<std::byte> back;
  multilog::decode_chunks_to_records(
      torn_span.subspan(0, idx.valid_bytes), sizeof(Record<std::uint32_t>),
      true, back);
  EXPECT_EQ(back.size(),
            multilog::kLogChunkMaxRecords * sizeof(Record<std::uint32_t>));
}

TEST(TornFunnelV2, MidHeaderTearTruncatesOrThrows) {
  const auto stream = two_chunk_stream();
  const auto whole = multilog::index_log_chunks(
      std::as_bytes(std::span<const std::uint8_t>(stream)),
      TornPagePolicy::kThrow);
  const std::size_t last = whole.chunk_offsets.back();
  // Keep only 3 of the final chunk's 6 header bytes.
  const std::size_t cut = last + 3;
  const auto torn_span =
      std::as_bytes(std::span<const std::uint8_t>(stream.data(), cut));
  EXPECT_THROW(multilog::index_log_chunks(torn_span, TornPagePolicy::kThrow),
               Error);
  const auto idx =
      multilog::index_log_chunks(torn_span, TornPagePolicy::kTruncate);
  EXPECT_EQ(idx.valid_bytes, last);
  EXPECT_EQ(idx.dropped_bytes, std::size_t{3});
}

TEST(TornFunnelV2, CorruptHeaderThrowsUnderBothPolicies) {
  // Headers that cannot be valid at any stream length are corruption, never
  // truncation: zero records, dst stream shorter than one byte per record,
  // dst stream longer than the body.
  const struct {
    std::uint16_t n, dst, body;
  } bad[] = {{0, 0, 0}, {5, 3, 100}, {1, 12, 4}};
  for (const auto& h : bad) {
    std::vector<std::uint8_t> stream(multilog::kLogChunkHeaderBytes + 128, 0);
    std::memcpy(stream.data() + 0, &h.n, 2);
    std::memcpy(stream.data() + 2, &h.dst, 2);
    std::memcpy(stream.data() + 4, &h.body, 2);
    const auto span = std::as_bytes(std::span<const std::uint8_t>(stream));
    EXPECT_THROW(multilog::index_log_chunks(span, TornPagePolicy::kThrow),
                 Error);
    EXPECT_THROW(multilog::index_log_chunks(span, TornPagePolicy::kTruncate),
                 Error);
  }
}

// ---- fused scatter vs v1 grouping ------------------------------------------

/// Group-local normal form: within each destination group, order of equal-dst
/// records is unspecified (parallel sort / unit decomposition), so sort each
/// group's payloads before comparing.
template <typename Message>
std::vector<Record<Message>> normalized(multilog::GroupedLog<Message> g) {
  for (std::size_t i = 0; i + 1 < g.offsets.size(); ++i) {
    std::sort(g.records.begin() + g.offsets[i],
              g.records.begin() + g.offsets[i + 1],
              [](const Record<Message>& a, const Record<Message>& b) {
                return a.payload < b.payload;
              });
  }
  return std::move(g.records);
}

TEST(SortGroupV2, MatchesV1OnBothPaths) {
  const VertexId lo = 200, hi = 1800;
  const std::size_t n = 9'000;
  const auto dsts = clustered_dsts(n, lo, hi, 53);
  std::mt19937_64 rng(59);
  std::vector<Record<std::uint32_t>> recs(n);
  for (std::size_t i = 0; i < n; ++i) {
    recs[i] = {dsts[i], static_cast<std::uint32_t>(rng())};
  }
  const auto v1_bytes = to_bytes(recs);
  std::vector<std::uint8_t> chunks;
  multilog::encode_log_records(v1_bytes.data(), n,
                               sizeof(Record<std::uint32_t>), true, chunks);
  const auto v2_bytes = std::as_bytes(std::span<const std::uint8_t>(chunks));

  for (const auto path :
       {SortGroupPath::kCountingScatter, SortGroupPath::kComparisonSort}) {
    auto a = multilog::sort_and_group<std::uint32_t>(v1_bytes, lo, hi, path);
    auto b = multilog::sort_and_group_v2<std::uint32_t>(v2_bytes, lo, hi, path);
    ASSERT_EQ(a.decoded, n);
    ASSERT_EQ(b.decoded, n);
    ASSERT_EQ(a.offsets, b.offsets) << "path " << static_cast<int>(path);
    const auto na = normalized(std::move(a));
    const auto nb = normalized(std::move(b));
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i].dst, nb[i].dst) << "record " << i;
      ASSERT_EQ(na[i].payload, nb[i].payload) << "record " << i;
    }
  }
}

TEST(SortGroupV2, MatchesV1WithCombine) {
  const VertexId lo = 0, hi = 700;
  const std::size_t n = 6'000;
  const auto dsts = clustered_dsts(n, lo, hi, 61);
  std::vector<Record<std::uint32_t>> recs(n);
  for (std::size_t i = 0; i < n; ++i) {
    recs[i] = {dsts[i], static_cast<std::uint32_t>(i % 251)};
  }
  const auto v1_bytes = to_bytes(recs);
  std::vector<std::uint8_t> chunks;
  multilog::encode_log_records(v1_bytes.data(), n,
                               sizeof(Record<std::uint32_t>), true, chunks);
  const auto v2_bytes = std::as_bytes(std::span<const std::uint8_t>(chunks));
  const auto sum = [](std::uint32_t a, std::uint32_t b) { return a + b; };

  for (const auto path :
       {SortGroupPath::kCountingScatter, SortGroupPath::kComparisonSort}) {
    const auto a =
        multilog::sort_and_group<std::uint32_t>(v1_bytes, lo, hi, path, sum);
    const auto b =
        multilog::sort_and_group_v2<std::uint32_t>(v2_bytes, lo, hi, path, sum);
    // Combine is associative+commutative on u32 (wrapping sum), so both
    // formats must collapse to exactly one identical record per live dst.
    ASSERT_EQ(a.records.size(), b.records.size())
        << "path " << static_cast<int>(path);
    ASSERT_EQ(a.offsets, b.offsets);
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      ASSERT_EQ(a.records[i].dst, b.records[i].dst) << "record " << i;
      ASSERT_EQ(a.records[i].payload, b.records[i].payload) << "record " << i;
    }
  }
}

// ---- stored CSR v1 vs v2 ----------------------------------------------------

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

graph::CsrGraph sample_graph(unsigned scale = 9, std::uint64_t seed = 5) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 6;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

void expect_adjacency_equals(graph::StoredCsrGraph& stored,
                             const graph::CsrGraph& csr) {
  ASSERT_EQ(stored.num_edges(), csr.num_edges());
  const auto& iv = stored.intervals();
  for (IntervalId i = 0; i < iv.count(); ++i) {
    const VertexId width = iv.width(i);
    std::vector<EdgeIndex> rowptr(width + 1);
    stored.read_local_row_ptrs(i, 0, width + 1, rowptr);
    std::vector<VertexId> colidx(rowptr.back());
    stored.read_adjacency(i, 0, rowptr.back(), colidx);
    for (VertexId lv = 0; lv < width; ++lv) {
      const auto expected = csr.neighbors(iv.begin(i) + lv);
      ASSERT_EQ(rowptr[lv + 1] - rowptr[lv], expected.size());
      for (std::size_t k = 0; k < expected.size(); ++k) {
        ASSERT_EQ(colidx[rowptr[lv] + k], expected[k])
            << "vertex " << iv.begin(i) + lv << " edge " << k;
      }
    }
  }
}

std::uint64_t stored_adjacency_bytes(const graph::StoredCsrGraph& g) {
  std::uint64_t total = 0;
  for (IntervalId i = 0; i < g.intervals().count(); ++i) {
    total += g.adjacency_stored_bytes(i);
  }
  return total;
}

TEST(StoredCsrFormat, V2MatchesCsrCompressesAndReopens) {
  Env env;
  const auto csr = sample_graph();
  const auto iv = graph::VertexIntervals::uniform(csr.num_vertices(), 64);
  graph::StoredCsrGraph v1(env.storage, "v1", csr, iv,
                           {.format = OnDiskFormat::kV1});
  graph::StoredCsrGraph v2(env.storage, "v2", csr, iv,
                           {.format = OnDiskFormat::kV2});
  expect_adjacency_equals(v2, csr);
  // Sorted R-MAT adjacency must compress well below the fixed 4 B/edge.
  EXPECT_EQ(stored_adjacency_bytes(v1), csr.num_edges() * sizeof(VertexId));
  EXPECT_LT(stored_adjacency_bytes(v2), stored_adjacency_bytes(v1) / 2);

  // Both format tags persist through csr/meta and open() restores full
  // read access without the in-memory CsrGraph.
  const auto r1 = graph::StoredCsrGraph::open(env.storage, "v1");
  const auto r2 = graph::StoredCsrGraph::open(env.storage, "v2");
  EXPECT_EQ(r1->format(), OnDiskFormat::kV1);
  EXPECT_EQ(r2->format(), OnDiskFormat::kV2);
  expect_adjacency_equals(*r1, csr);
  expect_adjacency_equals(*r2, csr);
}

TEST(StoredCsrFormat, WeightsRoundTripUnderV2) {
  Env env;
  graph::EdgeList list;
  list.set_num_vertices(3);
  list.add(0, 1, 1.5f);
  list.add(0, 2, 2.5f);
  list.add(1, 2, 3.5f);
  const auto csr = graph::CsrGraph::from_edge_list(list);
  graph::StoredCsrGraph stored(
      env.storage, "g", csr, graph::VertexIntervals::uniform(3, 2),
      {.with_weights = true, .format = OnDiskFormat::kV2});
  std::vector<float> w(2);
  stored.read_values(0, 0, 2, w);
  EXPECT_FLOAT_EQ(w[0], 1.5f);
  EXPECT_FLOAT_EQ(w[1], 2.5f);
}

// ---- engine v1-vs-v2 matrix -------------------------------------------------

template <core::VertexApp App>
std::vector<typename App::Value> run_fmt(const graph::CsrGraph& csr, App app,
                                         OnDiskFormat format, bool pipeline,
                                         std::size_t staging,
                                         Superstep max_steps) {
  Env env;
  auto opts = testing_options();
  opts.max_supersteps = max_steps;
  opts.on_disk_format = format;
  opts.enable_pipeline = pipeline;
  opts.scatter_staging_records = staging;
  graph::StoredCsrGraph stored(env.storage, "g", csr,
                               core::partition_for_app<App>(csr, opts),
                               {.with_weights = App::kNeedsWeights,
                                .format = format});
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  engine.run();
  return engine.values();
}

// The format is a pure storage change: for every app (varint payload, fixed
// float payload) x produce path (locked / staged) x scheduling (serial /
// pipelined), v1 and v2 must agree. Integer-valued apps compare bit-exact;
// PageRank combines floats whose fold order is unspecified, so it compares
// within rounding tolerance.
TEST(EngineFormatMatrix, ValuesMatchAcrossFormats) {
  ScopedFormatEnv guard;
  const auto csr = sample_graph(9, 11);
  const struct {
    bool pipeline;
    std::size_t staging;
  } configs[] = {{false, 0}, {true, 64}};

  const auto bfs_expected = reference::bfs_distances(csr, 3);
  for (const auto& cfg : configs) {
    SCOPED_TRACE(::testing::Message()
                 << "pipeline=" << cfg.pipeline << " staging=" << cfg.staging);
    const auto bfs1 = run_fmt(csr, apps::Bfs{.source = 3}, OnDiskFormat::kV1,
                              cfg.pipeline, cfg.staging, 50);
    const auto bfs2 = run_fmt(csr, apps::Bfs{.source = 3}, OnDiskFormat::kV2,
                              cfg.pipeline, cfg.staging, 50);
    EXPECT_EQ(bfs1, bfs2);
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      ASSERT_EQ(bfs2[v], bfs_expected[v]) << "vertex " << v;
    }

    const auto wcc1 = run_fmt(csr, apps::Wcc{}, OnDiskFormat::kV1,
                              cfg.pipeline, cfg.staging, 50);
    const auto wcc2 = run_fmt(csr, apps::Wcc{}, OnDiskFormat::kV2,
                              cfg.pipeline, cfg.staging, 50);
    EXPECT_EQ(wcc1, wcc2);

    apps::PageRank pr;
    pr.threshold = 0.1f;
    const auto pr1 =
        run_fmt(csr, pr, OnDiskFormat::kV1, cfg.pipeline, cfg.staging, 15);
    const auto pr2 =
        run_fmt(csr, pr, OnDiskFormat::kV2, cfg.pipeline, cfg.staging, 15);
    ASSERT_EQ(pr1.size(), pr2.size());
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      ASSERT_NEAR(pr1[v], pr2[v], 1e-3) << "vertex " << v;
    }
  }
}

// ---- checkpoint across formats ----------------------------------------------

graph::CsrGraph ckpt_graph(std::uint64_t seed = 71) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 5;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

core::EngineOptions fmt_opts(OnDiskFormat format, Superstep max_steps = 15) {
  auto o = testing_options();
  o.max_supersteps = max_steps;
  o.on_disk_format = format;
  return o;
}

/// Checkpoint after superstep 0 of CDLP (logs at their fattest) in one
/// format, restore + resume in the other over the same directory; the final
/// labels must match an uninterrupted run. This is the transcode path for
/// real interval logs, both directions.
void check_cross_format_resume(OnDiskFormat save_fmt, OnDiskFormat load_fmt) {
  ScopedFormatEnv guard;
  const auto csr = ckpt_graph();
  const auto expected = reference::cdlp_labels(csr, 15);
  ssd::TempDir dir;
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;

  {
    ssd::Storage storage(dir.path(), device);
    const auto opts = fmt_opts(save_fmt);
    graph::StoredCsrGraph stored(
        storage, "g", csr, core::partition_for_app<apps::Cdlp>(csr, opts),
        {.format = save_fmt});
    core::MultiLogVCEngine<apps::Cdlp> engine(stored, apps::Cdlp{}, opts);
    int steps = 0;
    engine.run_with_callback(
        [&](const core::SuperstepStats&) { return ++steps < 1; });
    engine.save_checkpoint("xfmt");
  }

  ssd::Storage reopened(dir.path(), device);
  const auto opts = fmt_opts(load_fmt);
  graph::StoredCsrGraph stored(
      reopened, "g", csr, core::partition_for_app<apps::Cdlp>(csr, opts),
      {.format = load_fmt});
  core::MultiLogVCEngine<apps::Cdlp> engine(stored, apps::Cdlp{}, opts);
  engine.load_checkpoint("xfmt");
  const auto stats = engine.run();
  // The first resumed superstep must consume the transcoded pending log.
  ASSERT_GE(stats.supersteps.size(), 1u);
  EXPECT_GT(stats.supersteps.front().messages_consumed, 0u);
  const auto values = engine.values();
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(values[v], expected[v]) << "vertex " << v;
  }
}

TEST(CheckpointFormat, V1ImageRestoresIntoV2Store) {
  check_cross_format_resume(OnDiskFormat::kV1, OnDiskFormat::kV2);
}

TEST(CheckpointFormat, V2ImageRestoresIntoV1Store) {
  check_cross_format_resume(OnDiskFormat::kV2, OnDiskFormat::kV1);
}

TEST(CheckpointFormat, LegacyVersion2ImageLoads) {
  // Pre-format-v2 checkpoints were version 2: no log-format byte, logs in
  // v1 layout. Synthesize one from a version-3 v1-format image by stripping
  // the format byte and re-stamping the header, then restore it into a v2
  // store — exercising both the legacy acceptance and the v1 -> v2
  // transcode in one load.
  ScopedFormatEnv guard;
  const auto csr = ckpt_graph(72);
  const auto expected = reference::cdlp_labels(csr, 15);
  ssd::TempDir dir;
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;

  std::vector<std::uint8_t> image;
  {
    ssd::Storage storage(dir.path(), device);
    const auto opts = fmt_opts(OnDiskFormat::kV1);
    graph::StoredCsrGraph stored(
        storage, "g", csr, core::partition_for_app<apps::Cdlp>(csr, opts),
        {.format = OnDiskFormat::kV1});
    core::MultiLogVCEngine<apps::Cdlp> engine(stored, apps::Cdlp{}, opts);
    int steps = 0;
    engine.run_with_callback(
        [&](const core::SuperstepStats&) { return ++steps < 1; });
    engine.save_checkpoint("v3");
    ssd::Blob& blob = storage.open_blob("mlvc/ckpt_v3");
    image.resize(blob.size());
    blob.read(0, image.data(), image.size());
  }

  // Header: [u32 magic][u32 version][u64 payload_bytes][u32 crc]. The
  // version-3 payload is [u32 next_superstep][u8 log_format][...]; drop the
  // format byte at payload offset 4 and restamp version/length/CRC.
  ASSERT_GT(image.size(), std::size_t{25});
  std::uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes, image.data() + 8, 8);
  ASSERT_EQ(image.size(), 20 + payload_bytes);
  std::vector<std::uint8_t> legacy(image.begin(), image.end());
  legacy.erase(legacy.begin() + 24);  // the log-format byte
  const std::uint32_t version2 = 2;
  const std::uint64_t new_payload = payload_bytes - 1;
  std::memcpy(legacy.data() + 4, &version2, 4);
  std::memcpy(legacy.data() + 8, &new_payload, 8);
  const std::uint32_t crc = crc32(legacy.data() + 20, new_payload);
  std::memcpy(legacy.data() + 16, &crc, 4);

  ssd::Storage reopened(dir.path(), device);
  ssd::Blob& blob =
      reopened.create_blob("mlvc/ckpt_legacy", ssd::IoCategory::kMisc);
  blob.append(legacy.data(), legacy.size());

  const auto opts = fmt_opts(OnDiskFormat::kV2);
  graph::StoredCsrGraph stored(
      reopened, "g", csr, core::partition_for_app<apps::Cdlp>(csr, opts),
      {.format = OnDiskFormat::kV2});
  core::MultiLogVCEngine<apps::Cdlp> engine(stored, apps::Cdlp{}, opts);
  engine.load_checkpoint("legacy");
  engine.run();
  const auto values = engine.values();
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(values[v], expected[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace mlvc
