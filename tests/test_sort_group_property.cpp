// Property tests for the §V.B fused counting-scatter grouping path.
//
// Unit level: on random logs the counting scatter must produce the identical
// per-destination multiset, group structure, and (with a combine operator)
// identical combined records as the decode + comparison-sort path, across
// empty logs, single-destination logs, duplicate-destination floods, and
// sparse/wide ranges. Corrupt inputs (torn pages, out-of-range destinations)
// must surface as typed errors, not UB.
//
// Engine level: random R-MAT graphs × seeds × apps, with and without
// combine, on both the serial and pipelined engines — final vertex values
// must not depend on the grouping path.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <tuple>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/pagerank.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "multilog/record.hpp"
#include "multilog/sort_group.hpp"
#include "ssd/storage.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

using TestRecord = multilog::Record<std::uint32_t>;

std::vector<std::byte> encode(const std::vector<TestRecord>& records) {
  std::vector<std::byte> bytes(records.size() * sizeof(TestRecord));
  std::memcpy(bytes.data(), records.data(), bytes.size());
  return bytes;
}

std::vector<TestRecord> random_log(std::uint64_t seed, std::size_t n,
                                   VertexId range_begin, VertexId width) {
  SplitMix64 rng(seed);
  std::vector<TestRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(
        {range_begin + static_cast<VertexId>(rng.next_below(width)),
         static_cast<std::uint32_t>(rng.next_below(1000))});
  }
  return records;
}

using DstMultisets = std::map<VertexId, std::multiset<std::uint32_t>>;

DstMultisets by_destination(const multilog::GroupedLog<std::uint32_t>& g) {
  DstMultisets out;
  for (const auto& r : g.records) out[r.dst].insert(r.payload);
  return out;
}

/// The two paths must agree on everything except intra-group record order
/// (unspecified by contract: inboxes are multisets).
void expect_equivalent(const std::vector<TestRecord>& log, VertexId begin,
                       VertexId end) {
  const auto bytes = encode(log);
  const auto scatter = multilog::sort_and_group<std::uint32_t>(
      bytes, begin, end, SortGroupPath::kCountingScatter);
  const auto cmp = multilog::sort_and_group<std::uint32_t>(
      bytes, begin, end, SortGroupPath::kComparisonSort);
  ASSERT_EQ(scatter.path, SortGroupPath::kCountingScatter);
  ASSERT_EQ(cmp.path, SortGroupPath::kComparisonSort);
  EXPECT_EQ(scatter.decoded, log.size());
  EXPECT_EQ(cmp.decoded, log.size());
  EXPECT_EQ(scatter.offsets, cmp.offsets);
  ASSERT_EQ(scatter.records.size(), cmp.records.size());
  // Group heads must name the same destinations in the same order.
  for (std::size_t gi = 0; gi + 1 < scatter.offsets.size(); ++gi) {
    EXPECT_EQ(scatter.records[scatter.offsets[gi]].dst,
              cmp.records[cmp.offsets[gi]].dst);
  }
  EXPECT_EQ(by_destination(scatter), by_destination(cmp));

  // With a combine operator both paths collapse to one record per
  // destination; u32 sums are exact, so the results match bit-for-bit.
  const auto sum = [](std::uint32_t a, std::uint32_t b) { return a + b; };
  const auto scatter_c = multilog::sort_and_group<std::uint32_t>(
      bytes, begin, end, SortGroupPath::kCountingScatter, sum);
  const auto cmp_c = multilog::sort_and_group<std::uint32_t>(
      bytes, begin, end, SortGroupPath::kComparisonSort, sum);
  EXPECT_EQ(scatter_c.offsets, cmp_c.offsets);
  ASSERT_EQ(scatter_c.records.size(), cmp_c.records.size());
  for (std::size_t i = 0; i < scatter_c.records.size(); ++i) {
    EXPECT_EQ(scatter_c.records[i].dst, cmp_c.records[i].dst);
    EXPECT_EQ(scatter_c.records[i].payload, cmp_c.records[i].payload);
  }
  EXPECT_EQ(scatter_c.decoded, log.size());
  EXPECT_EQ(cmp_c.decoded, log.size());
}

class SortGroupScatterProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SortGroupScatterProperty, MatchesComparisonPath) {
  SplitMix64 seeds(GetParam());
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 1 + seeds.next_below(20000);
    const VertexId width = 1 + static_cast<VertexId>(seeds.next_below(4096));
    const VertexId begin = static_cast<VertexId>(seeds.next_below(1u << 20));
    expect_equivalent(random_log(seeds.next(), n, begin, width), begin,
                      begin + width);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortGroupScatterProperty,
                         ::testing::Values(1, 2, 7, 19, 42));

TEST(SortGroupScatter, EmptyLog) {
  expect_equivalent({}, 100, 200);
  const auto g = multilog::sort_and_group<std::uint32_t>(
      {}, 100, 200, SortGroupPath::kCountingScatter);
  EXPECT_TRUE(g.records.empty());
  EXPECT_EQ(g.offsets, std::vector<std::size_t>{0});
  EXPECT_EQ(g.decoded, 0u);
}

TEST(SortGroupScatter, SingleDestinationLog) {
  std::vector<TestRecord> log;
  for (std::uint32_t i = 0; i < 5000; ++i) log.push_back({77, i});
  expect_equivalent(log, 50, 150);
  // Scatter keeps append order within the group (stable counting sort).
  const auto g = multilog::sort_and_group<std::uint32_t>(
      encode(log), 50, 150, SortGroupPath::kCountingScatter);
  ASSERT_EQ(g.records.size(), 5000u);
  EXPECT_EQ(g.offsets, (std::vector<std::size_t>{0, 5000}));
  for (std::uint32_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(g.records[i].payload, i);
  }
}

TEST(SortGroupScatter, DuplicateDestinationFlood) {
  SplitMix64 rng(5);
  std::vector<TestRecord> log;
  for (int i = 0; i < 60000; ++i) {
    log.push_back({static_cast<VertexId>(rng.next_below(3)),
                   static_cast<std::uint32_t>(i)});
  }
  expect_equivalent(log, 0, 64);
}

TEST(SortGroupScatter, WidthOne) {
  std::vector<TestRecord> log;
  for (std::uint32_t i = 0; i < 100; ++i) log.push_back({9, i});
  expect_equivalent(log, 9, 10);
}

TEST(SortGroupScatter, AutoPicksScatterForDenseLogs) {
  const auto log = random_log(1, 10000, 0, 256);
  const auto g = multilog::sort_and_group<std::uint32_t>(
      encode(log), 0, 256, SortGroupPath::kAuto);
  EXPECT_EQ(g.path, SortGroupPath::kCountingScatter);
}

TEST(SortGroupScatter, AutoFallsBackForNearlyEmptyWideLogs) {
  // A tail-superstep log: a handful of records over a huge vertex range.
  const auto log = random_log(2, 8, 0, 1u << 20);
  const auto g = multilog::sort_and_group<std::uint32_t>(
      encode(log), 0, 1u << 20, SortGroupPath::kAuto);
  EXPECT_EQ(g.path, SortGroupPath::kComparisonSort);
  expect_equivalent(log, 0, 1u << 20);
}

// ---- corruption surfaces as typed errors, not UB ---------------------------

TEST(SortGroupScatter, TornLogPageThrowsOnEveryPath) {
  auto bytes = encode(random_log(3, 1000, 0, 64));
  bytes.resize(bytes.size() - 3);  // torn mid-record
  for (auto path : {SortGroupPath::kAuto, SortGroupPath::kCountingScatter,
                    SortGroupPath::kComparisonSort}) {
    EXPECT_THROW((multilog::sort_and_group<std::uint32_t>(bytes, 0, 64, path)),
                 Error)
        << to_string(path);
    EXPECT_THROW((multilog::sort_and_group<std::uint32_t>(
                     bytes, 0, 64, path,
                     [](std::uint32_t a, std::uint32_t b) { return a + b; })),
                 Error)
        << to_string(path);
  }
}

TEST(SortGroupScatter, OutOfRangeDestinationThrows) {
  auto log = random_log(4, 1000, 100, 64);
  log[500].dst = 9999;  // corrupt destination header
  const auto bytes = encode(log);
  EXPECT_THROW((multilog::sort_and_group<std::uint32_t>(
                   bytes, 100, 164, SortGroupPath::kCountingScatter)),
               Error);
  EXPECT_THROW((multilog::sort_and_group<std::uint32_t>(
                   bytes, 100, 164, SortGroupPath::kCountingScatter,
                   [](std::uint32_t a, std::uint32_t b) { return a + b; })),
               Error);
}

// ---- engine-level equivalence ----------------------------------------------

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

template <core::VertexApp App>
std::pair<std::vector<typename App::Value>, core::RunStats> run_engine(
    const graph::CsrGraph& csr, App app, core::EngineOptions opts) {
  Env env;
  auto intervals = core::partition_for_app<App>(csr, opts);
  graph::StoredCsrGraph stored(env.storage, "g", csr, intervals);
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  auto stats = engine.run();
  return {engine.values(), std::move(stats)};
}

graph::CsrGraph property_graph(std::uint64_t seed) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 6;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

/// Every grouping path must yield the same values on the serial and the
/// pipelined engine, with combine enabled and disabled.
template <core::VertexApp App, typename Cmp>
void path_matrix(const graph::CsrGraph& csr, App app, Cmp&& compare) {
  for (const bool pipeline : {false, true}) {
    for (const bool combine : {true, false}) {
      auto base = testing_options();
      base.max_supersteps = 30;
      base.enable_pipeline = pipeline;
      base.enable_combine = combine;

      base.sort_group_path = SortGroupPath::kComparisonSort;
      const auto [ref_values, ref_stats] = run_engine(csr, app, base);
      EXPECT_EQ(ref_stats.groups_scatter(), 0u);
      EXPECT_GT(ref_stats.groups_comparison(), 0u);

      for (const auto path :
           {SortGroupPath::kCountingScatter, SortGroupPath::kAuto}) {
        auto opts = base;
        opts.sort_group_path = path;
        const auto [values, stats] = run_engine(csr, app, opts);
        if (path == SortGroupPath::kCountingScatter) {
          EXPECT_EQ(stats.groups_comparison(), 0u);
          EXPECT_GT(stats.groups_scatter(), 0u);
        } else {
          EXPECT_GT(stats.groups_scatter() + stats.groups_comparison(), 0u);
        }
        ASSERT_EQ(values.size(), ref_values.size());
        for (VertexId v = 0; v < csr.num_vertices(); ++v) {
          compare(ref_values[v], values[v], v, pipeline, combine);
        }
      }
    }
  }
}

const auto exact = [](const auto& a, const auto& b, VertexId v, bool pipeline,
                      bool combine) {
  ASSERT_EQ(a, b) << "vertex " << v << " pipeline=" << pipeline
                  << " combine=" << combine;
};

class SortGroupEngineProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SortGroupEngineProperty, BfsValuesPathIndependent) {
  path_matrix(property_graph(GetParam()), apps::Bfs{.source = 1}, exact);
}

TEST_P(SortGroupEngineProperty, CdlpValuesPathIndependent) {
  path_matrix(property_graph(GetParam()), apps::Cdlp{}, exact);
}

TEST_P(SortGroupEngineProperty, PageRankValuesPathIndependent) {
  apps::PageRank app;
  app.threshold = 0.1f;
  // Combine fold order differs between the paths, so float sums compare
  // within rounding tolerance rather than bit-exactly.
  path_matrix(property_graph(GetParam()), app,
              [](float a, float b, VertexId v, bool pipeline, bool combine) {
                ASSERT_NEAR(a, b, 1e-4)
                    << "vertex " << v << " pipeline=" << pipeline
                    << " combine=" << combine;
              });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortGroupEngineProperty,
                         ::testing::Values(11, 29));

TEST(SortGroupEngineStats, SortGroupTimeIsReported) {
  auto opts = testing_options();
  opts.max_supersteps = 5;
  const auto [values, stats] =
      run_engine(property_graph(11), apps::Cdlp{}, opts);
  (void)values;
  EXPECT_GT(stats.groups_scatter() + stats.groups_comparison(), 0u);
  EXPECT_GE(stats.sort_group_seconds(), 0.0);
  for (const auto& s : stats.supersteps) {
    EXPECT_GE(s.sort_group_seconds, 0.0);
  }
}

}  // namespace
}  // namespace mlvc
