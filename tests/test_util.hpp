// Shared test configuration helpers.
#pragma once

#include "core/options.hpp"

namespace mlvc {

/// Small budgets + small pages so even tiny test graphs exercise the
/// out-of-core paths (multiple intervals, log spills, page coalescing).
inline core::EngineOptions testing_options() {
  core::EngineOptions opts;
  opts.memory_budget_bytes = 2_MiB;
  opts.max_supersteps = 50;
  return opts;
}

}  // namespace mlvc
