// Direction-optimizing execution (DESIGN.md §4e): pull and adaptive must be
// pure execution-strategy changes — vertex values identical to push (within
// float tolerance for PageRank's reassociated sums) — while pull intervals
// bypass the message-log write/decode/sort path. Also covers the density
// counting primitives the heuristic feeds on and checkpoint round-trips that
// carry pull state.
#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/pagerank_delta.hpp"
#include "apps/wcc.hpp"
#include "common/bitset.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "multilog/active_set.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

graph::CsrGraph direction_graph(unsigned scale = 9, std::uint64_t seed = 7) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 6;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

template <core::VertexApp App>
struct RunResult {
  std::vector<typename App::Value> values;
  core::RunStats stats;
};

/// One engine run over a freshly materialized store. The CI adaptive leg
/// re-runs this whole binary under MLVC_DIRECTION=adaptive; tests here pin
/// the direction per run, so the env override must not leak in.
template <core::VertexApp App>
RunResult<App> run(const graph::CsrGraph& csr, App app,
                   core::EngineOptions opts, unsigned devices = 1,
                   bool with_transpose = true) {
  setenv("MLVC_DIRECTION", to_string(opts.direction), /*overwrite=*/1);
  ssd::TempDir dir("direction");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  device.num_devices = devices;
  ssd::Storage storage(dir.path(), device);
  auto intervals = core::partition_for_app<App>(csr, opts);
  graph::StoredCsrGraph stored(storage, "g", csr, intervals,
                               {.with_weights = App::kNeedsWeights,
                                .with_transpose = with_transpose});
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  RunResult<App> r;
  r.stats = engine.run();
  r.values = engine.values();
  unsetenv("MLVC_DIRECTION");
  return r;
}

core::EngineOptions direction_opts(Superstep max_steps = 60) {
  auto o = testing_options();
  o.max_supersteps = max_steps;
  return o;
}

// ---- push/pull/adaptive equivalence matrix --------------------------------
//
// devices {1, 4} x pipeline {off, on} x schedule {bsp, hub-degree}: every
// cell must produce the push values bit-exactly for integer-valued apps.
// (The scheduled sweep stays frozen-order synchronous, so pull's gather is
// still a per-superstep barrier there.)

template <core::VertexApp App, typename Cmp>
void direction_matrix(const graph::CsrGraph& csr, App app,
                      core::EngineOptions base, Cmp&& compare) {
  for (unsigned devices : {1u, 4u}) {
    for (bool pipeline : {false, true}) {
      for (SchedulePolicy sched :
           {SchedulePolicy::kBsp, SchedulePolicy::kHubDegree}) {
        auto opts = base;
        opts.enable_pipeline = pipeline;
        opts.schedule_policy = sched;
        opts.direction = DirectionMode::kPush;
        const auto push = run(csr, app, opts, devices);
        for (DirectionMode dir :
             {DirectionMode::kPull, DirectionMode::kAdaptive}) {
          auto alt_opts = opts;
          alt_opts.direction = dir;
          const auto alt = run(csr, app, alt_opts, devices);
          ASSERT_EQ(push.values.size(), alt.values.size());
          for (VertexId v = 0; v < csr.num_vertices(); ++v) {
            compare(push.values[v], alt.values[v], v,
                    std::string(to_string(dir)) + " devices=" +
                        std::to_string(devices) +
                        " pipeline=" + std::to_string(pipeline) +
                        " schedule=" + to_string(sched));
          }
        }
      }
    }
  }
}

const auto exact_match = [](const auto& a, const auto& b, VertexId v,
                            const std::string& cell) {
  ASSERT_EQ(a, b) << "vertex " << v << ", " << cell;
};

TEST(DirectionEquivalence, Bfs) {
  direction_matrix(direction_graph(), apps::Bfs{.source = 3},
                   direction_opts(), exact_match);
}

TEST(DirectionEquivalence, Wcc) {
  direction_matrix(direction_graph(9, 23), apps::Wcc{}, direction_opts(),
                   exact_match);
}

TEST(DirectionEquivalence, PageRankTolerance) {
  apps::PageRank app;
  app.threshold = 0.1f;
  direction_matrix(direction_graph(), app, direction_opts(15),
                   [](float a, float b, VertexId v, const std::string& cell) {
                     ASSERT_NEAR(a, b, 1e-4) << "vertex " << v << ", " << cell;
                   });
}

TEST(DirectionEquivalence, PageRankDeltaTolerance) {
  const auto csr = direction_graph();
  apps::PageRankDelta app;
  auto base = direction_opts(15);
  base.direction = DirectionMode::kPush;
  const auto push = run(csr, app, base);
  for (DirectionMode dir : {DirectionMode::kPull, DirectionMode::kAdaptive}) {
    auto opts = base;
    opts.direction = dir;
    const auto alt = run(csr, app, opts);
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      ASSERT_NEAR(push.values[v].rank, alt.values[v].rank, 1e-4)
          << "vertex " << v << ", " << to_string(dir);
    }
  }
}

// ---- the pull path actually engages ---------------------------------------

TEST(DirectionStats, PullEngagesAndAvoidsLogBytes) {
  const auto csr = direction_graph();
  auto opts = direction_opts();
  opts.direction = DirectionMode::kPull;
  const auto r = run(csr, apps::Bfs{.source = 3}, opts);
  EXPECT_EQ(r.stats.direction, "pull");
  EXPECT_TRUE(r.stats.direction_fallback.empty())
      << r.stats.direction_fallback;
  EXPECT_GT(r.stats.intervals_pulled(), 0u);
  EXPECT_GT(r.stats.log_bytes_avoided(), 0u);
}

TEST(DirectionStats, PushIsTheInertDefault) {
  const auto csr = direction_graph();
  const auto r = run(csr, apps::Bfs{.source = 3}, direction_opts());
  EXPECT_EQ(r.stats.direction, "push");
  EXPECT_EQ(r.stats.intervals_pulled(), 0u);
  EXPECT_EQ(r.stats.log_bytes_avoided(), 0u);
}

// ---- fallback gates --------------------------------------------------------

TEST(DirectionFallback, NoTransposeStoreFallsBackToPush) {
  const auto csr = direction_graph();
  apps::Bfs app{.source = 3};
  const auto push = run(csr, app, direction_opts());
  auto opts = direction_opts();
  opts.direction = DirectionMode::kPull;
  const auto r = run(csr, app, opts, /*devices=*/1, /*with_transpose=*/false);
  EXPECT_EQ(r.stats.direction, "push");
  EXPECT_FALSE(r.stats.direction_fallback.empty());
  EXPECT_EQ(r.stats.intervals_pulled(), 0u);
  EXPECT_EQ(r.values, push.values);
}

TEST(DirectionFallback, AsynchronousModelFallsBackToPush) {
  const auto csr = direction_graph();
  auto opts = direction_opts();
  opts.direction = DirectionMode::kPull;
  opts.model = core::ComputationModel::kAsynchronous;
  const auto r = run(csr, apps::Bfs{.source = 3}, opts);
  EXPECT_EQ(r.stats.direction, "push");
  EXPECT_FALSE(r.stats.direction_fallback.empty());
  EXPECT_EQ(r.stats.intervals_pulled(), 0u);
}

TEST(DirectionFallback, CombineDisabledFallsBackToPush) {
  const auto csr = direction_graph();
  auto opts = direction_opts();
  opts.direction = DirectionMode::kAdaptive;
  opts.enable_combine = false;
  const auto r = run(csr, apps::Bfs{.source = 3}, opts);
  EXPECT_EQ(r.stats.direction, "push");
  EXPECT_FALSE(r.stats.direction_fallback.empty());
}

// ---- density counting primitives (the heuristic's inputs) ------------------

TEST(DensityCounting, ActiveSetCountInRangeEdgeCases) {
  multilog::ActiveSet set(200);
  // Empty interval: [k, k) is 0 regardless of surrounding bits.
  set.activate(64);
  EXPECT_EQ(set.count_in_range(64, 64), 0u);
  EXPECT_EQ(set.count_in_range(0, 0), 0u);
  EXPECT_EQ(set.count_in_range(200, 200), 0u);
  // Word-straddling boundary: bits on both sides of the 64-bit word edge.
  set.activate(63);
  set.activate(65);
  EXPECT_EQ(set.count_in_range(63, 66), 3u);
  EXPECT_EQ(set.count_in_range(64, 66), 2u);
  EXPECT_EQ(set.count_in_range(63, 64), 1u);
  EXPECT_EQ(set.count_in_range(0, 200), 3u);
  // Matches the scan-based active_in_range on the same ranges.
  EXPECT_EQ(set.count_in_range(60, 130), set.active_in_range(60, 130).size());
}

TEST(DensityCounting, ActiveSetAllActive) {
  multilog::ActiveSet set(130);  // 2 full words + a 2-bit tail
  for (VertexId v = 0; v < 130; ++v) set.activate(v);
  EXPECT_EQ(set.count_in_range(0, 130), 130u);
  EXPECT_EQ(set.count_in_range(0, 64), 64u);
  EXPECT_EQ(set.count_in_range(64, 128), 64u);
  EXPECT_EQ(set.count_in_range(128, 130), 2u);
  EXPECT_EQ(set.count_in_range(1, 129), 128u);
}

TEST(DensityCounting, DynamicBitsetCountInRangeMatchesScan) {
  DynamicBitset bits(193);
  for (std::size_t i = 0; i < 193; i += 3) bits.set(i);
  for (std::size_t begin : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 192u}) {
    for (std::size_t end : {0u, 1u, 63u, 64u, 65u, 128u, 192u, 193u}) {
      if (begin > end) continue;
      std::size_t expected = 0;
      for (std::size_t i = begin; i < end; ++i) expected += bits.test(i);
      EXPECT_EQ(bits.count_in_range(begin, end), expected)
          << "[" << begin << ", " << end << ")";
    }
  }
}

// ---- checkpoint round-trip with pull state --------------------------------

TEST(DirectionCheckpoint, ResumeUnderAdaptiveMatchesUninterruptedRun) {
  setenv("MLVC_DIRECTION", "adaptive", /*overwrite=*/1);
  const auto csr = direction_graph(9, 41);
  apps::Wcc app;
  auto opts = direction_opts();
  opts.direction = DirectionMode::kAdaptive;

  const auto make_env = [&](ssd::TempDir& dir) {
    ssd::DeviceConfig device;
    device.page_size = 4_KiB;
    return ssd::Storage(dir.path(), device);
  };

  // Uninterrupted reference.
  ssd::TempDir ref_dir("direction_ckpt_ref");
  auto ref_storage = make_env(ref_dir);
  graph::StoredCsrGraph ref_stored(
      ref_storage, "g", csr, core::partition_for_app<apps::Wcc>(csr, opts));
  core::MultiLogVCEngine<apps::Wcc> ref_engine(ref_stored, app, opts);
  ref_engine.run();
  const auto expected = ref_engine.values();

  // Interrupted: checkpoint mid-run (pull state in flight), diverge, roll
  // back, resume to completion.
  ssd::TempDir dir("direction_ckpt");
  auto storage = make_env(dir);
  graph::StoredCsrGraph stored(
      storage, "g", csr, core::partition_for_app<apps::Wcc>(csr, opts));
  core::MultiLogVCEngine<apps::Wcc> engine(stored, app, opts);
  int steps = 0;
  engine.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 2; });
  engine.save_checkpoint("mid");
  steps = 0;
  engine.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 3; });
  engine.load_checkpoint("mid");
  engine.run();
  EXPECT_EQ(engine.values(), expected);
  unsetenv("MLVC_DIRECTION");
}

}  // namespace
}  // namespace mlvc
