// In-memory reference implementations used to validate every engine.
//
// These are deliberately simple, textbook implementations over CsrGraph —
// no logs, no storage, no supersteps — so an engine bug cannot hide behind
// shared code.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <vector>

#include "graph/csr.hpp"

namespace mlvc::reference {

/// BFS hop distances from `source`; UINT32_MAX for unreachable vertices.
inline std::vector<std::uint32_t> bfs_distances(const graph::CsrGraph& g,
                                                VertexId source) {
  std::vector<std::uint32_t> dist(g.num_vertices(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : g.neighbors(v)) {
      if (dist[u] == std::numeric_limits<std::uint32_t>::max()) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

/// Delta-PageRank reference matching apps::PageRank semantics exactly
/// (same damping, same threshold gating, same superstep cap).
inline std::vector<double> delta_pagerank(const graph::CsrGraph& g,
                                          double damping, double threshold,
                                          unsigned max_supersteps) {
  const VertexId n = g.num_vertices();
  std::vector<double> rank(n, 1.0);
  std::vector<double> incoming(n, 0.0);
  // Superstep 0: everyone pushes its initial rank.
  for (VertexId v = 0; v < n; ++v) {
    const double delta = rank[v];
    if (delta > threshold && g.out_degree(v) > 0) {
      const double share = damping * delta / static_cast<double>(g.out_degree(v));
      for (VertexId u : g.neighbors(v)) incoming[u] += share;
    }
  }
  for (unsigned s = 1; s < max_supersteps; ++s) {
    std::vector<double> next(n, 0.0);
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      const double delta = incoming[v];
      if (delta == 0.0) continue;
      rank[v] += delta;
      if (delta > threshold && g.out_degree(v) > 0) {
        const double share =
            damping * delta / static_cast<double>(g.out_degree(v));
        for (VertexId u : g.neighbors(v)) next[u] += share;
        any = true;
      }
    }
    incoming = std::move(next);
    if (!any) break;
  }
  return rank;
}

/// Synchronous label propagation matching apps::Cdlp (mode of incoming
/// labels, ties to the smallest, send only on change).
inline std::vector<VertexId> cdlp_labels(const graph::CsrGraph& g,
                                         unsigned max_supersteps) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;

  // inbox[v] = labels arriving this superstep.
  std::vector<std::vector<VertexId>> inbox(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.neighbors(v)) inbox[u].push_back(label[v]);
  }
  for (unsigned s = 1; s < max_supersteps; ++s) {
    std::vector<std::vector<VertexId>> next(n);
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      if (inbox[v].empty()) continue;
      std::sort(inbox[v].begin(), inbox[v].end());
      VertexId best = inbox[v].front();
      std::size_t best_count = 0, i = 0;
      while (i < inbox[v].size()) {
        std::size_t j = i + 1;
        while (j < inbox[v].size() && inbox[v][j] == inbox[v][i]) ++j;
        if (j - i > best_count) {
          best_count = j - i;
          best = inbox[v][i];
        }
        i = j;
      }
      if (best != label[v]) {
        label[v] = best;
        for (VertexId u : g.neighbors(v)) next[u].push_back(best);
        any = true;
      }
    }
    inbox = std::move(next);
    if (!any) break;
  }
  return label;
}

/// Validity check: no edge joins two same-colored vertices.
inline bool coloring_is_valid(const graph::CsrGraph& g,
                              const std::vector<std::uint32_t>& colors) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (u != v && colors[u] == colors[v]) return false;
    }
  }
  return true;
}

/// Validity check for a maximal independent set given per-vertex states
/// (1 = in set, 2 = not in set, 0 = undecided).
inline bool mis_is_valid(const graph::CsrGraph& g,
                         const std::vector<std::uint8_t>& state) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (state[v] == 0) return false;  // must be decided
    if (state[v] == 1) {
      for (VertexId u : g.neighbors(v)) {
        if (u != v && state[u] == 1) return false;  // independence
      }
    } else {
      // Maximality: an excluded vertex must have an in-set neighbor.
      bool has_in_neighbor = false;
      for (VertexId u : g.neighbors(v)) {
        if (state[u] == 1) {
          has_in_neighbor = true;
          break;
        }
      }
      if (!has_in_neighbor) return false;
    }
  }
  return true;
}

/// Dijkstra shortest paths over edge weights.
inline std::vector<double> dijkstra(const graph::CsrGraph& g,
                                    VertexId source) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_vertices(), inf);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    const auto nbrs = g.neighbors(v);
    const auto w = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double nd = d + w[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.emplace(nd, nbrs[i]);
      }
    }
  }
  return dist;
}

/// k-core membership by sequential peeling; true = in the k-core.
inline std::vector<bool> kcore_membership(const graph::CsrGraph& g,
                                          std::uint32_t k) {
  std::vector<std::uint32_t> degree(g.num_vertices());
  std::vector<bool> removed(g.num_vertices(), false);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degree[v] = static_cast<std::uint32_t>(g.out_degree(v));
    if (degree[v] < k) {
      removed[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : g.neighbors(v)) {
      if (!removed[u] && degree[u] > 0 && --degree[u] < k) {
        removed[u] = true;
        queue.push_back(u);
      }
    }
  }
  std::vector<bool> in_core(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) in_core[v] = !removed[v];
  return in_core;
}

/// Connected-component labels: each vertex mapped to the minimum vertex id
/// of its component (undirected reachability).
inline std::vector<VertexId> wcc_labels(const graph::CsrGraph& g) {
  std::vector<VertexId> label(g.num_vertices(), kInvalidVertex);
  for (VertexId root = 0; root < g.num_vertices(); ++root) {
    if (label[root] != kInvalidVertex) continue;
    std::deque<VertexId> queue = {root};
    label[root] = root;
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (VertexId u : g.neighbors(v)) {
        if (label[u] == kInvalidVertex) {
          label[u] = root;
          queue.push_back(u);
        }
      }
    }
  }
  return label;
}

}  // namespace mlvc::reference
