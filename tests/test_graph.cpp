// Unit and property tests for the graph module: edge lists, CSR, vertex
// intervals, generators, SNAP loading, and graph statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/intervals.hpp"
#include "graph/snap_loader.hpp"

namespace mlvc::graph {
namespace {

// ---- EdgeList --------------------------------------------------------------

TEST(EdgeList, AddTracksVertexCount) {
  EdgeList list;
  list.add(3, 7);
  EXPECT_EQ(list.num_vertices(), 8u);
  EXPECT_EQ(list.num_edges(), 1u);
}

TEST(EdgeList, NormalizeDropsSelfLoopsAndDuplicates) {
  EdgeList list;
  list.add(0, 1);
  list.add(1, 1);  // self loop
  list.add(0, 1);  // duplicate
  list.add(1, 0);
  list.normalize();
  EXPECT_EQ(list.num_edges(), 2u);
}

TEST(EdgeList, MakeUndirectedMirrors) {
  EdgeList list;
  list.set_num_vertices(3);
  list.add(0, 1);
  list.add(1, 2);
  list.make_undirected();
  EXPECT_EQ(list.num_edges(), 4u);
  const auto csr = CsrGraph::from_edge_list(list);
  EXPECT_EQ(csr.out_degree(0), 1u);
  EXPECT_EQ(csr.out_degree(1), 2u);
  EXPECT_EQ(csr.out_degree(2), 1u);
}

TEST(EdgeList, ValidateCatchesOutOfRange) {
  EdgeList list(2, {Edge{0, 5, 1.0f}});
  EXPECT_THROW(list.validate(), InvalidArgument);
}

// ---- CsrGraph --------------------------------------------------------------

TEST(CsrGraph, FromEdgeListBasic) {
  EdgeList list;
  list.set_num_vertices(4);
  list.add(0, 1, 2.0f);
  list.add(0, 2, 3.0f);
  list.add(2, 3, 4.0f);
  const auto csr = CsrGraph::from_edge_list(list);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 3u);
  EXPECT_EQ(csr.out_degree(0), 2u);
  EXPECT_EQ(csr.out_degree(1), 0u);
  EXPECT_EQ(csr.neighbors(0)[0], 1u);
  EXPECT_EQ(csr.neighbors(0)[1], 2u);
  EXPECT_EQ(csr.weights(2)[0], 4.0f);
}

TEST(CsrGraph, EmptyGraph) {
  EdgeList list;
  const auto csr = CsrGraph::from_edge_list(list);
  EXPECT_EQ(csr.num_vertices(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrGraph, InDegreesMatchManualCount) {
  EdgeList list;
  list.set_num_vertices(4);
  list.add(0, 3);
  list.add(1, 3);
  list.add(2, 3);
  list.add(3, 0);
  const auto csr = CsrGraph::from_edge_list(list);
  const auto in = csr.in_degrees();
  EXPECT_EQ(in[3], 3u);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 0u);
}

/// Property: CSR round-trips the (sorted, deduped) edge set.
class CsrRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrRoundTrip, PreservesEdges) {
  SplitMix64 rng(GetParam());
  EdgeList list;
  const VertexId n = 50 + static_cast<VertexId>(rng.next_below(200));
  list.set_num_vertices(n);
  const std::size_t m = 100 + rng.next_below(2000);
  for (std::size_t e = 0; e < m; ++e) {
    list.add(static_cast<VertexId>(rng.next_below(n)),
             static_cast<VertexId>(rng.next_below(n)));
  }
  list.set_num_vertices(n);
  list.normalize();

  const auto csr = CsrGraph::from_edge_list(list);
  std::vector<Edge> recovered;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (VertexId u : csr.neighbors(v)) recovered.push_back(Edge{v, u, 1.0f});
  }
  ASSERT_EQ(recovered.size(), list.num_edges());
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].src, list.edges()[i].src);
    EXPECT_EQ(recovered[i].dst, list.edges()[i].dst);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- VertexIntervals -------------------------------------------------------

TEST(VertexIntervals, UniformCoversExactly) {
  const auto iv = VertexIntervals::uniform(10, 3);
  EXPECT_EQ(iv.count(), 4u);
  EXPECT_EQ(iv.begin(0), 0u);
  EXPECT_EQ(iv.end(3), 10u);
  EXPECT_EQ(iv.width(3), 1u);
}

TEST(VertexIntervals, UniformWidthLargerThanGraph) {
  const auto iv = VertexIntervals::uniform(5, 100);
  EXPECT_EQ(iv.count(), 1u);
  EXPECT_EQ(iv.width(0), 5u);
}

TEST(VertexIntervals, IntervalOfIsConsistent) {
  const auto iv = VertexIntervals::uniform(100, 7);
  for (VertexId v = 0; v < 100; ++v) {
    const IntervalId i = iv.interval_of(v);
    EXPECT_GE(v, iv.begin(i));
    EXPECT_LT(v, iv.end(i));
  }
  EXPECT_THROW(iv.interval_of(100), Error);
}

TEST(VertexIntervals, PartitionRespectsBudget) {
  std::vector<EdgeIndex> in_degrees(1000);
  SplitMix64 rng(9);
  for (auto& d : in_degrees) d = rng.next_below(50);
  const std::size_t bytes_per_update = 8;
  const std::size_t budget = 2000;  // 250 updates
  const auto iv = VertexIntervals::partition_by_in_degree(
      in_degrees, bytes_per_update, budget);
  EXPECT_GT(iv.count(), 1u);
  for (IntervalId i = 0; i < iv.count(); ++i) {
    std::uint64_t updates = 0;
    for (VertexId v = iv.begin(i); v < iv.end(i); ++v) {
      updates += in_degrees[v];
    }
    // Every interval except possibly singleton-oversized ones fits.
    if (iv.width(i) > 1) {
      EXPECT_LE(updates * bytes_per_update, budget) << "interval " << i;
    }
  }
  EXPECT_EQ(iv.num_vertices(), 1000u);
}

TEST(VertexIntervals, OversizedVertexGetsSingleton) {
  std::vector<EdgeIndex> in_degrees = {1, 1000, 1};
  const auto iv =
      VertexIntervals::partition_by_in_degree(in_degrees, 8, 100);
  // Vertex 1 alone exceeds the budget; it must still be covered.
  EXPECT_EQ(iv.num_vertices(), 3u);
  const IntervalId of_1 = iv.interval_of(1);
  EXPECT_LE(iv.width(of_1), 2u);
}

TEST(VertexIntervals, FromBoundariesValidation) {
  EXPECT_NO_THROW(VertexIntervals::from_boundaries({0, 5, 10}));
  EXPECT_THROW(VertexIntervals::from_boundaries({1, 5}), Error);
  EXPECT_THROW(VertexIntervals::from_boundaries({0, 5, 5}), Error);
  EXPECT_THROW(VertexIntervals::from_boundaries({0, 7, 3}), Error);
}

TEST(VertexIntervals, EmptyGraph) {
  const auto iv = VertexIntervals::partition_by_in_degree({}, 8, 100);
  EXPECT_EQ(iv.count(), 0u);
  EXPECT_EQ(iv.num_vertices(), 0u);
}

// ---- generators -------------------------------------------------------------

TEST(Generators, RmatDeterministicPerSeed) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  p.seed = 77;
  const auto a = generate_rmat(p);
  const auto b = generate_rmat(p);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
  }
  p.seed = 78;
  const auto c = generate_rmat(p);
  EXPECT_NE(a.num_edges(), c.num_edges());
}

TEST(Generators, RmatUndirectedIsSymmetric) {
  RmatParams p;
  p.scale = 7;
  p.edge_factor = 4;
  const auto list = generate_rmat(p);
  const auto csr = CsrGraph::from_edge_list(list);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (VertexId u : csr.neighbors(v)) {
      const auto back = csr.neighbors(u);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), v))
          << "edge (" << v << "," << u << ") has no mirror";
    }
  }
}

TEST(Generators, RmatIsSkewed) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const auto stats =
      compute_stats(CsrGraph::from_edge_list(generate_rmat(p)));
  // Power-law: the max degree dwarfs the median.
  EXPECT_GT(stats.max_out_degree, 50 * std::max<EdgeIndex>(1, stats.p50_degree));
}

TEST(Generators, ErdosRenyiIsNotSkewed) {
  const auto stats = compute_stats(
      CsrGraph::from_edge_list(generate_erdos_renyi(4096, 32768, 3)));
  EXPECT_LT(stats.max_out_degree, 10 * std::max<EdgeIndex>(1, stats.p50_degree));
}

TEST(Generators, GridDegreesAreSmall) {
  const auto csr = CsrGraph::from_edge_list(generate_grid(10, 10));
  EXPECT_EQ(csr.num_vertices(), 100u);
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_GE(csr.out_degree(v), 2u);
    EXPECT_LE(csr.out_degree(v), 4u);
  }
  // Corner has exactly 2 neighbors.
  EXPECT_EQ(csr.out_degree(0), 2u);
}

TEST(Generators, StarShape) {
  const auto csr = CsrGraph::from_edge_list(generate_star(50));
  EXPECT_EQ(csr.out_degree(0), 49u);
  for (VertexId v = 1; v < 50; ++v) EXPECT_EQ(csr.out_degree(v), 1u);
}

TEST(Generators, ChainShape) {
  const auto csr = CsrGraph::from_edge_list(generate_chain(10));
  EXPECT_EQ(csr.out_degree(0), 1u);
  EXPECT_EQ(csr.out_degree(5), 2u);
  EXPECT_EQ(csr.num_edges(), 18u);
}

TEST(Generators, CompleteGraph) {
  const auto csr = CsrGraph::from_edge_list(generate_complete(8));
  EXPECT_EQ(csr.num_edges(), 8u * 7u);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(csr.out_degree(v), 7u);
}

// ---- SNAP loader -----------------------------------------------------------

TEST(SnapLoader, ParsesCommentsAndEdges) {
  std::istringstream in(
      "# Directed graph\n"
      "# FromNodeId ToNodeId\n"
      "0 1\n"
      "1 2\n"
      "2 0\n");
  const auto list = load_snap_edge_list(in, {.make_undirected = false});
  EXPECT_EQ(list.num_edges(), 3u);
  EXPECT_EQ(list.num_vertices(), 3u);
}

TEST(SnapLoader, CompactsSparseIds) {
  std::istringstream in("1000000 2000000\n2000000 3000000\n");
  const auto list = load_snap_edge_list(in, {.make_undirected = false});
  EXPECT_EQ(list.num_vertices(), 3u);
}

TEST(SnapLoader, UndirectedByDefault) {
  std::istringstream in("0 1\n");
  const auto list = load_snap_edge_list(in);
  EXPECT_EQ(list.num_edges(), 2u);
}

TEST(SnapLoader, MalformedLineThrows) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW(load_snap_edge_list(in), InvalidArgument);
}

TEST(SnapLoader, OptionalWeightColumn) {
  std::istringstream in("0 1 2.5\n");
  const auto list = load_snap_edge_list(in, {.make_undirected = false});
  EXPECT_FLOAT_EQ(list.edges()[0].weight, 2.5f);
}

TEST(SnapLoader, MissingFileThrows) {
  EXPECT_THROW(load_snap_edge_list("/nonexistent/file.txt"), IoError);
}

// ---- GraphStats ------------------------------------------------------------

TEST(GraphStats, StarStatistics) {
  const auto stats = compute_stats(CsrGraph::from_edge_list(generate_star(101)));
  EXPECT_EQ(stats.num_vertices, 101u);
  EXPECT_EQ(stats.max_out_degree, 100u);
  EXPECT_EQ(stats.p50_degree, 1u);
  EXPECT_DOUBLE_EQ(stats.isolated_fraction, 0.0);
  EXPECT_FALSE(stats.to_string().empty());
}

}  // namespace
}  // namespace mlvc::graph
