// Tests for the metrics layer: tables, CSV emission, summaries, speedup
// math, and JSON export.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "metrics/json_export.hpp"
#include "metrics/report.hpp"
#include "ssd/storage.hpp"

namespace mlvc::metrics {
namespace {

core::RunStats sample_stats() {
  core::RunStats stats;
  stats.engine = "MultiLogVC";
  stats.app = "bfs";
  for (Superstep s = 0; s < 3; ++s) {
    core::SuperstepStats step;
    step.superstep = s;
    step.active_vertices = 100 >> s;
    step.messages_consumed = s == 0 ? 0 : 50;
    step.messages_produced = 50;
    step.modeled_storage_seconds = 0.010;
    step.compute_wall_seconds = 0.005;
    step.io[ssd::IoCategory::kCsrColIdx].pages_read = 10;
    step.io[ssd::IoCategory::kMessageLog].pages_written = 4;
    step.io[ssd::IoCategory::kMessageLog].bytes_written = 4096;
    stats.supersteps.push_back(step);
  }
  return stats;
}

TEST(Metrics, SummaryContainsKeyNumbers) {
  const auto s = summarize(sample_stats());
  EXPECT_NE(s.find("MultiLogVC/bfs"), std::string::npos);
  EXPECT_NE(s.find("3 supersteps"), std::string::npos);
  EXPECT_NE(s.find("30 pages read"), std::string::npos);
}

TEST(Metrics, SpeedupAndPageRatio) {
  auto fast = sample_stats();
  auto slow = sample_stats();
  for (auto& s : slow.supersteps) {
    s.modeled_storage_seconds *= 4;
    s.compute_wall_seconds *= 4;
    s.io[ssd::IoCategory::kCsrColIdx].pages_read *= 3;
  }
  EXPECT_NEAR(speedup(slow, fast), 4.0, 1e-9);
  EXPECT_GT(page_ratio(slow, fast), 2.0);
}

TEST(Metrics, CsvWrittenWhenDirSet) {
  ssd::TempDir dir;
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  t.write_csv(dir.path().string(), "unit");
  std::ifstream in(dir.path() / "unit.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
}

TEST(Metrics, CsvSkippedWhenDirEmpty) {
  Table t({"a"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.write_csv("", "unit"));
}

TEST(Metrics, TableRejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(JsonExport, WellFormedAndComplete) {
  const auto json = to_json(sample_stats());
  // Structural spot checks (no JSON parser in the dependency set).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"engine\":\"MultiLogVC\""), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"bfs\""), std::string::npos);
  EXPECT_NE(json.find("\"supersteps\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pages_read\":30"), std::string::npos);
  EXPECT_NE(json.find("\"message_log\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_written\":4096"), std::string::npos);
  // Balanced braces and brackets.
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(JsonExport, EscapesStrings) {
  core::RunStats stats;
  stats.engine = "weird\"name\\with\nnewline";
  stats.app = "x";
  const auto json = to_json(stats);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnewline"), std::string::npos);
}

}  // namespace
}  // namespace mlvc::metrics
