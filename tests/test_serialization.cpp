// Tests for the binary graph container and the CLI argument parser.
#include <gtest/gtest.h>

#include <sstream>

#include "common/args.hpp"
#include "graph/generators.hpp"
#include "graph/serialization.hpp"
#include "ssd/storage.hpp"

namespace mlvc {
namespace {

TEST(Serialization, RoundTripUnweighted) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 5;
  p.seed = 33;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
  std::stringstream buf;
  graph::save_csr(csr, buf, /*with_weights=*/false);
  const auto back = graph::load_csr(buf);
  ASSERT_EQ(back.num_vertices(), csr.num_vertices());
  ASSERT_EQ(back.num_edges(), csr.num_edges());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    const auto a = csr.neighbors(v);
    const auto b = back.neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()));
  }
}

TEST(Serialization, RoundTripWeighted) {
  graph::EdgeList list;
  list.set_num_vertices(4);
  list.add(0, 1, 1.25f);
  list.add(1, 2, 2.5f);
  list.add(2, 3, 3.75f);
  const auto csr = graph::CsrGraph::from_edge_list(list);
  std::stringstream buf;
  graph::save_csr(csr, buf);
  const auto back = graph::load_csr(buf);
  EXPECT_FLOAT_EQ(back.weights(0)[0], 1.25f);
  EXPECT_FLOAT_EQ(back.weights(2)[0], 3.75f);
}

TEST(Serialization, RejectsBadMagic) {
  std::stringstream buf;
  buf << "definitely not a graph";
  EXPECT_THROW(graph::load_csr(buf), InvalidArgument);
}

TEST(Serialization, RejectsTruncation) {
  graph::EdgeList list;
  list.set_num_vertices(10);
  list.add(0, 1);
  const auto csr = graph::CsrGraph::from_edge_list(list);
  std::stringstream buf;
  graph::save_csr(csr, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(graph::load_csr(cut), InvalidArgument);
}

TEST(Serialization, RejectsCorruptRowPtr) {
  graph::EdgeList list;
  list.set_num_vertices(3);
  list.add(0, 1);
  const auto csr = graph::CsrGraph::from_edge_list(list);
  std::stringstream buf;
  graph::save_csr(csr, buf);
  std::string bytes = buf.str();
  // Flip a row-pointer byte (header is 24 bytes; rowptr follows).
  bytes[25] = static_cast<char>(0xFF);
  std::stringstream broken(bytes);
  EXPECT_THROW(graph::load_csr(broken), InvalidArgument);
}

TEST(Serialization, FileRoundTrip) {
  ssd::TempDir dir;
  const auto path = dir.path() / "g.mlvc";
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_chain(50));
  graph::save_csr(csr, path);
  const auto back = graph::load_csr(path);
  EXPECT_EQ(back.num_edges(), csr.num_edges());
  EXPECT_THROW(graph::load_csr(dir.path() / "missing.mlvc"), IoError);
}

// ---- ArgParser -------------------------------------------------------------

TEST(ArgParser, ParsesBothForms) {
  ArgParser args("t", "test");
  args.option("alpha", "a", "0").option("beta", "b", "x");
  const char* argv[] = {"t", "--alpha", "42", "--beta=hello"};
  args.parse(4, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 42);
  EXPECT_EQ(args.get_string("beta", ""), "hello");
}

TEST(ArgParser, DefaultsApply) {
  ArgParser args("t", "test");
  args.option("alpha", "a", "7");
  const char* argv[] = {"t"};
  args.parse(1, argv);
  EXPECT_EQ(args.get_int("alpha", 7), 7);
  EXPECT_FALSE(args.has("alpha"));
}

TEST(ArgParser, RequiredMissingThrows) {
  ArgParser args("t", "test");
  args.option("needed", "required thing");
  const char* argv[] = {"t"};
  EXPECT_THROW(args.parse(1, argv), InvalidArgument);
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser args("t", "test");
  args.option("alpha", "a", "0");
  const char* argv[] = {"t", "--bogus", "1"};
  EXPECT_THROW(args.parse(3, argv), InvalidArgument);
}

TEST(ArgParser, FlagsNeedNoValue) {
  ArgParser args("t", "test");
  args.option("verbose", "flag", "false").option("alpha", "a", "0");
  const char* argv[] = {"t", "--verbose", "--alpha", "3"};
  args.parse(4, argv);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
}

TEST(ArgParser, BadIntThrows) {
  ArgParser args("t", "test");
  args.option("alpha", "a", "0");
  const char* argv[] = {"t", "--alpha", "xyz"};
  args.parse(3, argv);
  EXPECT_THROW(args.get_int("alpha", 0), InvalidArgument);
}

TEST(ParseBytes, SuffixesWork) {
  EXPECT_EQ(parse_bytes("4096"), 4096u);
  EXPECT_EQ(parse_bytes("4K"), 4096u);
  EXPECT_EQ(parse_bytes("4k"), 4096u);
  EXPECT_EQ(parse_bytes("2M"), 2u << 20);
  EXPECT_EQ(parse_bytes("1G"), 1u << 30);
  EXPECT_THROW(parse_bytes("12Q"), InvalidArgument);
  EXPECT_THROW(parse_bytes(""), InvalidArgument);
  EXPECT_THROW(parse_bytes("abc"), InvalidArgument);
}

}  // namespace
}  // namespace mlvc
