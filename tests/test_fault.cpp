// Fault-injection substrate tests: seeded injector determinism, the storage
// retry/giveup policy, torn-page truncate-and-continue, atomic CRC-checked
// checkpoints, and the crash failpoint.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/engine.hpp"
#include "core/options.hpp"
#include "graph/generators.hpp"
#include "multilog/record.hpp"
#include "multilog/sort_group.hpp"
#include "ssd/fault_injector.hpp"
#include "ssd/io_backend.hpp"
#include "ssd/storage.hpp"
#include "ssd/uring_io.hpp"
#include "tests/test_util.hpp"

#if defined(__SANITIZE_THREAD__)
#define MLVC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MLVC_TSAN 1
#endif
#endif

namespace mlvc {
namespace {

using ssd::FaultDecision;
using ssd::FaultInjector;
using ssd::FaultProfile;
using ssd::FaultSite;

/// Save + clear the MLVC_FAULT_* environment for a test, restore on exit —
/// the suite itself may be running under a CI fault-matrix schedule.
class ScopedFaultEnv {
 public:
  ScopedFaultEnv() {
    for (const char* var : kVars) {
      const char* v = std::getenv(var);
      saved_.emplace_back(var, v ? std::string(v) : std::string());
      ::unsetenv(var);
    }
  }
  ~ScopedFaultEnv() {
    for (const auto& [var, value] : saved_) {
      if (value.empty()) {
        ::unsetenv(var.c_str());
      } else {
        ::setenv(var.c_str(), value.c_str(), 1);
      }
    }
  }

 private:
  static constexpr const char* kVars[] = {
      "MLVC_FAULT_PROFILE", "MLVC_FAULT_RATE", "MLVC_FAULT_SEED",
      "MLVC_FAULT_CRASH_AFTER", "MLVC_FAULT_RETRIES",
      "MLVC_FAULT_RETRY_BASE_US"};
  std::vector<std::pair<std::string, std::string>> saved_;
};

ssd::RetryPolicy fast_retries() {
  ssd::RetryPolicy p;
  p.max_attempts = 4;
  p.base_delay_us = 0;
  p.max_delay_us = 0;
  return p;
}

TEST(FaultInjector, SeededDecisionStreamIsDeterministic) {
  FaultProfile profile = FaultInjector::named_profile("mixed", 0.3);
  FaultInjector a(profile, 42);
  FaultInjector b(profile, 42);
  FaultInjector c(profile, 43);
  bool any_fault = false;
  bool differs = false;
  for (int i = 0; i < 2000; ++i) {
    const auto site = (i % 2 == 0) ? FaultSite::kRead : FaultSite::kWrite;
    const auto da = a.decide(site, 4096);
    const auto db = b.decide(site, 4096);
    const auto dc = c.decide(site, 4096);
    ASSERT_EQ(da.kind, db.kind);
    ASSERT_EQ(da.err, db.err);
    ASSERT_EQ(da.max_len, db.max_len);
    any_fault |= da.kind != FaultDecision::Kind::kNone;
    differs |= da.kind != dc.kind || da.max_len != dc.max_len;
  }
  EXPECT_TRUE(any_fault);   // the profile actually fires at this rate
  EXPECT_TRUE(differs);     // and the seed matters
  EXPECT_EQ(a.injected_transient(), b.injected_transient());
  EXPECT_EQ(a.injected_short(), b.injected_short());
}

TEST(FaultInjector, ConsecutiveTransientRunsAreCapped) {
  FaultProfile profile;
  profile.transient_read_rate = 1.0;
  profile.max_consecutive_transient = 2;
  FaultInjector inj(profile, 7);
  unsigned consecutive = 0;
  unsigned max_run = 0;
  for (int i = 0; i < 500; ++i) {
    const auto d = inj.decide(FaultSite::kRead, 64);
    if (d.kind == FaultDecision::Kind::kTransient) {
      max_run = std::max(max_run, ++consecutive);
    } else {
      consecutive = 0;
    }
  }
  EXPECT_EQ(max_run, 2u);  // every injected streak fits a retry budget of 4
}

TEST(FaultInjector, NamedProfilesAndEnvParsing) {
  ScopedFaultEnv env_guard;
  EXPECT_GT(FaultInjector::named_profile("transient", 0.1).transient_read_rate,
            0.0);
  EXPECT_GT(FaultInjector::named_profile("short-io", 0.1).short_write_rate,
            0.0);
  EXPECT_TRUE(FaultInjector::named_profile("torn-page", 0.1).tear_on_crash);
  EXPECT_EQ(FaultInjector::named_profile("torn-page", 0.1).transient_read_rate,
            0.0);  // inert in steady state
  EXPECT_EQ(FaultInjector::named_profile("giveup", 0.1)
                .max_consecutive_transient,
            0u);
  EXPECT_THROW(FaultInjector::named_profile("bogus", 0.1), InvalidArgument);

  EXPECT_EQ(FaultInjector::from_env(), nullptr);
  ::setenv("MLVC_FAULT_PROFILE", "off", 1);
  EXPECT_EQ(FaultInjector::from_env(), nullptr);
  ::setenv("MLVC_FAULT_PROFILE", "mixed", 1);
  ::setenv("MLVC_FAULT_SEED", "99", 1);
  ::setenv("MLVC_FAULT_RATE", "0.25", 1);
  ::setenv("MLVC_FAULT_CRASH_AFTER", "123", 1);
  const auto inj = FaultInjector::from_env();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->seed(), 99u);
  EXPECT_DOUBLE_EQ(inj->profile().transient_read_rate, 0.25);
  EXPECT_EQ(inj->profile().crash_after_writes, 123u);
}

TEST(FaultOptions, EngineEnvOverridesParsed) {
  ScopedFaultEnv env_guard;
  ::setenv("MLVC_FAULT_RETRIES", "7", 1);
  ::setenv("MLVC_FAULT_RETRY_BASE_US", "5", 1);
  ::setenv("MLVC_FAULT_TORN_RECOVERY", "0", 1);
  const auto opts = core::apply_env_overrides(core::EngineOptions{});
  EXPECT_EQ(opts.io_retry_attempts, 7u);
  EXPECT_EQ(opts.io_retry_base_delay_us, 5u);
  EXPECT_FALSE(opts.torn_page_recovery);
  ::unsetenv("MLVC_FAULT_TORN_RECOVERY");
}

TEST(FaultRetry, TransientFaultsAreRetriedThenSucceed) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  storage.set_retry_policy(fast_retries());
  FaultProfile profile;
  profile.transient_read_rate = 0.5;
  profile.transient_write_rate = 0.5;
  profile.max_consecutive_transient = 2;
  storage.set_fault_injector(std::make_shared<FaultInjector>(profile, 5));

  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  std::vector<char> data(64 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 31 + 7);
  }
  blob.write(0, data.data(), data.size());
  std::vector<char> back(data.size());
  blob.read(0, back.data(), back.size());
  EXPECT_EQ(back, data);

  const auto io = storage.stats().snapshot();
  EXPECT_GT(io.io_retry_count, 0u);   // faults actually fired
  EXPECT_EQ(io.io_giveup_count, 0u);  // and every one was absorbed
}

TEST(FaultRetry, ExhaustedBudgetEscalatesAsTypedIoError) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  storage.set_retry_policy(fast_retries());
  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  const char byte = 'x';
  blob.write(0, &byte, 1);

  // Unbounded consecutive transients ("giveup" preset at rate 1) must blow
  // through any finite retry budget.
  storage.set_fault_injector(std::make_shared<FaultInjector>(
      FaultInjector::named_profile("giveup", 1.0), 3));
  char out = 0;
  EXPECT_THROW(blob.read(0, &out, 1), IoError);
  const auto io = storage.stats().snapshot();
  EXPECT_GT(io.io_giveup_count, 0u);
  EXPECT_GT(io.io_retry_count, 0u);
}

TEST(FaultRetry, ShortIoIsAbsorbedByPartialProgressLoops) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  storage.set_retry_policy(fast_retries());
  FaultProfile profile;
  profile.short_read_rate = 1.0;  // every read attempt is clipped
  profile.short_write_rate = 1.0;
  storage.set_fault_injector(std::make_shared<FaultInjector>(profile, 9));

  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  std::vector<std::uint32_t> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(i * 2654435761u);
  }
  blob.append(data.data(), data.size() * 4);
  std::vector<std::uint32_t> back(data.size());
  blob.read(0, back.data(), back.size() * 4);
  EXPECT_EQ(back, data);

  // read_multi under the same clipping: contiguous ops (coalesced into one
  // preadv) and a scattered op both round-trip.
  std::vector<std::uint32_t> a(1000), b(1000), c(1000);
  const std::vector<ssd::ReadOp> ops = {
      {0, a.data(), a.size() * 4},
      {a.size() * 4, b.data(), b.size() * 4},
      {10000 * 4, c.data(), c.size() * 4},
  };
  blob.read_multi(ops);
  EXPECT_TRUE(std::memcmp(a.data(), data.data(), a.size() * 4) == 0);
  EXPECT_TRUE(std::memcmp(b.data(), data.data() + 1000, b.size() * 4) == 0);
  EXPECT_TRUE(std::memcmp(c.data(), data.data() + 10000, c.size() * 4) == 0);
  EXPECT_EQ(storage.stats().snapshot().io_giveup_count, 0u);
}

TEST(FaultRetry, SyncFailureEscalatesImmediately) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  const char byte = 'x';
  blob.write(0, &byte, 1);
  blob.sync();  // no injector: must pass

  FaultProfile profile;
  profile.sync_fail_rate = 1.0;
  storage.set_fault_injector(std::make_shared<FaultInjector>(profile, 2));
  EXPECT_THROW(blob.sync(), IoError);
  EXPECT_GT(storage.stats().snapshot().io_giveup_count, 0u);
}

TEST(FaultStorage, PublishBlobAtomicallyRenames) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  ssd::Blob& tmp = storage.create_blob("ckpt.tmp", ssd::IoCategory::kMisc);
  const std::uint64_t payload = 0xDEADBEEFCAFEF00Dull;
  tmp.append(&payload, 8);
  // Publishing replaces an existing blob under the final name.
  ssd::Blob& stale = storage.create_blob("ckpt", ssd::IoCategory::kMisc);
  const std::uint32_t junk = 1;
  stale.append(&junk, 4);
  storage.publish_blob("ckpt.tmp", "ckpt");

  EXPECT_FALSE(storage.has_blob("ckpt.tmp"));
  ssd::Blob& final_blob = storage.open_blob("ckpt");
  EXPECT_EQ(final_blob.size(), 8u);
  std::uint64_t back = 0;
  final_blob.read(0, &back, 8);
  EXPECT_EQ(back, payload);
  EXPECT_THROW(storage.publish_blob("missing", "x"), InvalidArgument);
}

TEST(FaultStorage, OpenBlobFallsBackToOnDiskFile) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  const std::uint32_t payload = 77;
  {
    ssd::Storage storage(dir.path());
    storage.create_blob("left/behind", ssd::IoCategory::kMisc)
        .append(&payload, 4);
  }
  // A fresh Storage (fresh process, conceptually) sees the file — both
  // through the presence probe and through open_blob's fallback.
  ssd::Storage reopened(dir.path());
  EXPECT_TRUE(reopened.has_blob("left/behind"));
  EXPECT_FALSE(reopened.has_blob("never/existed"));
  ssd::Blob& blob = reopened.open_blob("left/behind");
  std::uint32_t back = 0;
  blob.read(0, &back, 4);
  EXPECT_EQ(back, payload);
  EXPECT_THROW(reopened.open_blob("never/existed"), InvalidArgument);
}

// ---- torn-page truncate-and-continue --------------------------------------

TEST(TornPage, CheckedRecordCountPolicies) {
  using Rec = multilog::Record<std::uint64_t>;
  std::vector<std::byte> buf(5 * sizeof(Rec) + 3);  // 5 records + torn tail
  const std::span<const std::byte> torn(buf.data(), buf.size());
  const std::span<const std::byte> whole(buf.data(), 5 * sizeof(Rec));

  EXPECT_EQ(multilog::checked_record_count<std::uint64_t>(whole), 5u);
  EXPECT_THROW(multilog::checked_record_count<std::uint64_t>(torn), Error);
  EXPECT_EQ(multilog::checked_record_count<std::uint64_t>(
                torn, multilog::TornPagePolicy::kTruncate),
            5u);
  EXPECT_EQ(multilog::truncate_torn_tail(buf.size(), sizeof(Rec)),
            5 * sizeof(Rec));
  EXPECT_EQ(multilog::truncate_torn_tail(5 * sizeof(Rec), sizeof(Rec)),
            5 * sizeof(Rec));
}

TEST(TornPage, SortGroupOnTruncatedBufferMatchesCleanRecords) {
  using Msg = std::uint32_t;
  using Rec = multilog::Record<Msg>;
  std::vector<Rec> recs;
  SplitMix64 rng(17);
  for (int i = 0; i < 1000; ++i) {
    recs.push_back(Rec{static_cast<VertexId>(rng.next_below(64)),
                       static_cast<Msg>(rng.next_below(1u << 30))});
  }
  std::vector<std::byte> bytes(recs.size() * sizeof(Rec) + 5);  // torn tail
  std::memcpy(bytes.data(), recs.data(), recs.size() * sizeof(Rec));

  const std::size_t keep =
      multilog::truncate_torn_tail(bytes.size(), sizeof(Rec));
  ASSERT_EQ(keep, recs.size() * sizeof(Rec));
  const std::span<const std::byte> healthy(bytes.data(), keep);
  for (const auto path :
       {SortGroupPath::kCountingScatter, SortGroupPath::kComparisonSort}) {
    const auto grouped = multilog::sort_and_group<Msg>(healthy, 0, 64, path);
    EXPECT_EQ(grouped.decoded, recs.size());
  }
}

// ---- engine-level robustness ----------------------------------------------

graph::CsrGraph fault_graph() {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  p.seed = 21;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

template <core::VertexApp App>
struct Rig {
  ssd::TempDir dir;
  ssd::Storage storage;
  core::EngineOptions opts;
  graph::StoredCsrGraph stored;
  core::MultiLogVCEngine<App> engine;

  explicit Rig(const graph::CsrGraph& csr, App app = App{},
               std::shared_ptr<FaultInjector> injector = nullptr)
      : storage(dir.path(),
                [] {
                  ssd::DeviceConfig d;
                  d.page_size = 4_KiB;
                  return d;
                }()),
        opts([] {
          auto o = testing_options();
          o.io_retry_base_delay_us = 0;  // keep faulted runs fast
          return o;
        }()),
        stored((storage.set_fault_injector(std::move(injector)), storage),
               "g", csr, core::partition_for_app<App>(csr, opts)),
        engine(stored, app, opts) {}
};

TEST(FaultEngine, RunUnderTransientFaultsMatchesCleanRun) {
  ScopedFaultEnv env_guard;
  const auto csr = fault_graph();
  Rig<apps::Bfs> clean(csr, apps::Bfs{.source = 0});
  const auto expected = clean.engine.run();
  const auto clean_values = clean.engine.values();

  // Install the injector only after store/engine construction: the test
  // targets the run phase, and keeping construction I/O (including the
  // stored transpose build) out of the seeded fault schedule keeps the
  // fault positions stable across store-format changes.
  Rig<apps::Bfs> faulted(csr, apps::Bfs{.source = 0});
  faulted.storage.set_fault_injector(std::make_shared<FaultInjector>(
      FaultInjector::named_profile("mixed", 0.05), 31));
  const auto stats = faulted.engine.run();
  EXPECT_EQ(faulted.engine.values(), clean_values);
  EXPECT_EQ(stats.supersteps.size(), expected.supersteps.size());
  // Retries happened and are visible in the per-superstep IO snapshots.
  EXPECT_GT(stats.io_retries(), 0u);
  EXPECT_EQ(stats.io_giveups(), 0u);
  EXPECT_EQ(stats.torn_bytes_dropped(), 0u);
}

TEST(FaultEngine, CheckpointPublishIsAtomicAndReloadable) {
  ScopedFaultEnv env_guard;
  const auto csr = fault_graph();
  Rig<apps::Bfs> rig(csr, apps::Bfs{.source = 0});
  int steps = 0;
  rig.engine.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 2; });
  rig.engine.save_checkpoint("atomic");
  // No temp blob survives a successful save; the final name does, on disk.
  EXPECT_FALSE(rig.storage.has_blob("mlvc/ckpt_atomic.tmp"));
  EXPECT_TRUE(rig.storage.has_blob("mlvc/ckpt_atomic"));
  const auto at_ckpt = rig.engine.values();

  // Saving again under the same name atomically replaces the old image.
  rig.engine.run();
  const auto finished = rig.engine.values();
  rig.engine.save_checkpoint("atomic");
  rig.engine.load_checkpoint("atomic");
  EXPECT_EQ(rig.engine.values(), finished);
  EXPECT_NE(finished, at_ckpt);
}

TEST(FaultEngine, CorruptCheckpointIsRejectedWithoutPartialRestore) {
  ScopedFaultEnv env_guard;
  const auto csr = fault_graph();
  Rig<apps::Bfs> rig(csr, apps::Bfs{.source = 0});
  rig.engine.run();
  const auto finished = rig.engine.values();
  rig.engine.save_checkpoint("crc");

  // Flip one payload byte: load must fail on the CRC pass and leave the
  // engine exactly as it was.
  ssd::Blob& blob = rig.storage.open_blob("mlvc/ckpt_crc");
  std::uint8_t byte = 0;
  blob.read(40, &byte, 1);
  byte ^= 0xFF;
  blob.write(40, &byte, 1);
  EXPECT_THROW(rig.engine.load_checkpoint("crc"), Error);
  EXPECT_EQ(rig.engine.values(), finished);

  // A truncated header is rejected too (not silently mis-parsed).
  ssd::Blob& stub = rig.storage.create_blob("mlvc/ckpt_stub",
                                            ssd::IoCategory::kMisc);
  const std::uint32_t magic = 0x4B435643u;
  stub.append(&magic, 4);
  EXPECT_THROW(rig.engine.load_checkpoint("stub"), Error);
}

TEST(FaultEngine, CheckpointSurvivesStorageReopen) {
  // Cross-"process" recovery: a second Storage over the same directory must
  // find the checkpoint through the on-disk fallback and restore it.
  ScopedFaultEnv env_guard;
  const auto csr = fault_graph();
  Rig<apps::Bfs> rig(csr, apps::Bfs{.source = 0});
  rig.engine.run();
  rig.engine.save_checkpoint("xfer");
  const auto expected = rig.engine.values();

  ssd::DeviceConfig d;
  d.page_size = 4_KiB;
  ssd::Storage reopened(rig.dir.path(), d);
  auto opts = testing_options();
  graph::StoredCsrGraph stored(reopened, "g", csr,
                               core::partition_for_app<apps::Bfs>(csr, opts));
  core::MultiLogVCEngine<apps::Bfs> engine(stored, apps::Bfs{.source = 0},
                                           opts);
  engine.load_checkpoint("xfer");
  EXPECT_EQ(engine.values(), expected);
}

// ---- fault profiles × I/O backend -----------------------------------------
//
// Every fault profile must behave identically whichever I/O substrate carries
// the bytes: the thread-pool path injects at syscall time, the io_uring path
// at completion-reap time, and both must absorb / escalate / tear the same
// way. Uring arms skip cleanly when the kernel or sandbox refuses io_uring.

class FaultBackend : public ::testing::TestWithParam<ssd::IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == ssd::IoBackendKind::kUring &&
        !ssd::UringIo::probe().available) {
      GTEST_SKIP() << "io_uring unavailable: "
                   << ssd::UringIo::probe().reason;
    }
  }
  /// Route `storage` through the selected backend. SetUp skipped already
  /// when the probe says a uring request would fall back, so any fallback
  /// here is a real bug.
  void select_backend(ssd::Storage& storage) {
    ASSERT_EQ(storage.set_io_backend(GetParam(), 16), GetParam());
  }
};

std::string backend_name(
    const ::testing::TestParamInfo<ssd::IoBackendKind>& info) {
  return info.param == ssd::IoBackendKind::kUring ? "Uring" : "ThreadPool";
}

TEST_P(FaultBackend, TransientProfileIsAbsorbed) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  select_backend(storage);
  storage.set_retry_policy(fast_retries());
  storage.set_fault_injector(std::make_shared<FaultInjector>(
      FaultInjector::named_profile("transient", 0.5), 5));

  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  std::vector<char> data(64 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 31 + 7);
  }
  blob.write(0, data.data(), data.size());
  std::vector<char> back(data.size());
  blob.read(0, back.data(), back.size());
  EXPECT_EQ(back, data);

  const auto io = storage.stats().snapshot();
  EXPECT_GT(io.io_retry_count, 0u);   // faults actually fired
  EXPECT_EQ(io.io_giveup_count, 0u);  // and every one was absorbed
}

TEST_P(FaultBackend, ShortIoProfileIsAbsorbed) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  select_backend(storage);
  storage.set_retry_policy(fast_retries());
  storage.set_fault_injector(std::make_shared<FaultInjector>(
      FaultInjector::named_profile("short-io", 1.0), 9));

  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  std::vector<std::uint32_t> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(i * 2654435761u);
  }
  blob.append(data.data(), data.size() * 4);

  // read_multi under universal clipping: adjacent ops (coalesced into one
  // vectored request on both backends) and a scattered op all round-trip.
  std::vector<std::uint32_t> a(1000), b(1000), c(1000);
  const std::vector<ssd::ReadOp> ops = {
      {0, a.data(), a.size() * 4},
      {a.size() * 4, b.data(), b.size() * 4},
      {10000 * 4, c.data(), c.size() * 4},
  };
  blob.read_multi(ops);
  EXPECT_TRUE(std::memcmp(a.data(), data.data(), a.size() * 4) == 0);
  EXPECT_TRUE(std::memcmp(b.data(), data.data() + 1000, b.size() * 4) == 0);
  EXPECT_TRUE(std::memcmp(c.data(), data.data() + 10000, c.size() * 4) == 0);
  EXPECT_EQ(storage.stats().snapshot().io_giveup_count, 0u);
}

TEST_P(FaultBackend, GiveupProfileEscalatesAsTypedIoError) {
  ScopedFaultEnv env_guard;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  select_backend(storage);
  storage.set_retry_policy(fast_retries());
  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  const char byte = 'x';
  blob.write(0, &byte, 1);

  storage.set_fault_injector(std::make_shared<FaultInjector>(
      FaultInjector::named_profile("giveup", 1.0), 3));
  char out = 0;
  EXPECT_THROW(blob.read(0, &out, 1), IoError);
  const auto io = storage.stats().snapshot();
  EXPECT_GT(io.io_giveup_count, 0u);
  EXPECT_GT(io.io_retry_count, 0u);
}

TEST_P(FaultBackend, EngineRunUnderMixedFaultsMatchesClean) {
  ScopedFaultEnv env_guard;
  const auto csr = fault_graph();
  Rig<apps::Bfs> clean(csr, apps::Bfs{.source = 0});
  clean.engine.run();
  const auto clean_values = clean.engine.values();

  ssd::TempDir dir;
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), device);
  auto opts = testing_options();
  opts.io_retry_base_delay_us = 0;
  opts.io_backend = GetParam();
  opts.io_queue_depth = 16;
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<apps::Bfs>(csr, opts));
  core::MultiLogVCEngine<apps::Bfs> engine(stored, apps::Bfs{.source = 0},
                                           opts);
  // Injector installed after construction — the fault schedule lands
  // entirely in the run phase (see RunUnderTransientFaultsMatchesCleanRun).
  storage.set_fault_injector(std::make_shared<FaultInjector>(
      FaultInjector::named_profile("mixed", 0.05), 31));
  const auto stats = engine.run();
  EXPECT_EQ(engine.values(), clean_values);
  EXPECT_GT(stats.io_retries(), 0u);
  EXPECT_EQ(stats.io_giveups(), 0u);
  EXPECT_EQ(stats.torn_bytes_dropped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, FaultBackend,
                         ::testing::Values(ssd::IoBackendKind::kThreadPool,
                                           ssd::IoBackendKind::kUring),
                         backend_name);

#if !defined(MLVC_TSAN)
using FaultDeathTest = ::testing::Test;

TEST(FaultDeathTest, CrashFailpointKillsWithDedicatedExitCode) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_EXIT(
      {
        ssd::TempDir dir;
        ssd::Storage storage(dir.path());
        FaultProfile profile;
        profile.crash_after_writes = 3;
        profile.tear_on_crash = true;
        storage.set_fault_injector(
            std::make_shared<FaultInjector>(profile, 1));
        ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
        std::vector<char> page(8192, 'a');
        for (int i = 0; i < 10; ++i) {
          blob.append(page.data(), page.size());
        }
      },
      ::testing::ExitedWithCode(ssd::kCrashExitCode), "");
}

// The torn-page crash failpoint must fire on both substrates: the thread
// pool tears mid-pwrite, the uring backend tears at completion reap (the
// data already landed, so the tear is emulated by truncating the extending
// append back to a partial page before _Exit).
class FaultBackendDeathTest : public FaultBackend {};

TEST_P(FaultBackendDeathTest, TornPageCrashKillsWithDedicatedExitCode) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const auto backend = GetParam();
  ASSERT_EXIT(
      {
        ssd::TempDir dir;
        ssd::Storage storage(dir.path());
        storage.set_io_backend(backend, 8);
        FaultProfile profile;
        profile.crash_after_writes = 3;
        profile.tear_on_crash = true;
        storage.set_fault_injector(
            std::make_shared<FaultInjector>(profile, 1));
        ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
        std::vector<char> page(8192, 'a');
        for (int i = 0; i < 10; ++i) {
          blob.append(page.data(), page.size());
        }
      },
      ::testing::ExitedWithCode(ssd::kCrashExitCode), "");
}

INSTANTIATE_TEST_SUITE_P(Backends, FaultBackendDeathTest,
                         ::testing::Values(ssd::IoBackendKind::kThreadPool,
                                           ssd::IoBackendKind::kUring),
                         backend_name);
#endif  // !MLVC_TSAN

}  // namespace
}  // namespace mlvc
