// Tests for the GraphChi baseline's shard storage.
#include <gtest/gtest.h>

#include <cstring>

#include "graph/generators.hpp"
#include "graphchi/sharded_graph.hpp"

namespace mlvc::graphchi {
namespace {

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

graph::CsrGraph sample() {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 5;
  p.seed = 19;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

TEST(ShardedGraph, EveryEdgeLandsInItsDstShardSortedBySrc) {
  Env env;
  const auto csr = sample();
  const auto iv = graph::VertexIntervals::uniform(csr.num_vertices(), 60);
  ShardedGraph shards(env.storage, "sg", csr, iv, 4);

  EdgeIndex total = 0;
  for (IntervalId s = 0; s < shards.num_shards(); ++s) {
    std::vector<std::byte> block;
    shards.load_records(s, 0, shards.shard_edge_count(s), block);
    const std::size_t rec = shards.record_size();
    VertexId prev_src = 0;
    for (std::size_t r = 0; r * rec < block.size(); ++r) {
      VertexId src, dst;
      std::memcpy(&src, block.data() + r * rec + shards.src_offset(), 4);
      std::memcpy(&dst, block.data() + r * rec + shards.dst_offset(), 4);
      EXPECT_GE(src, prev_src) << "shard not sorted by src";
      prev_src = src;
      EXPECT_EQ(iv.interval_of(dst), s) << "edge in wrong shard";
      // The edge must exist in the CSR.
      const auto nbrs = csr.neighbors(src);
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), dst));
      ++total;
    }
  }
  EXPECT_EQ(total, csr.num_edges());
}

TEST(ShardedGraph, WindowsPartitionEachShard) {
  Env env;
  const auto csr = sample();
  const auto iv = graph::VertexIntervals::uniform(csr.num_vertices(), 60);
  ShardedGraph shards(env.storage, "sg", csr, iv, 4);

  for (IntervalId s = 0; s < shards.num_shards(); ++s) {
    EdgeIndex expected_start = 0;
    for (IntervalId j = 0; j < shards.num_shards(); ++j) {
      const auto w = shards.window(s, j);
      EXPECT_EQ(w.first, expected_start);
      expected_start = w.last;
      // Every record in the window has src in interval j.
      std::vector<std::byte> block;
      shards.load_records(s, w.first, w.last, block);
      const std::size_t rec = shards.record_size();
      for (std::size_t r = 0; r * rec < block.size(); ++r) {
        VertexId src;
        std::memcpy(&src, block.data() + r * rec + shards.src_offset(), 4);
        EXPECT_GE(src, iv.begin(j));
        EXPECT_LT(src, iv.end(j));
      }
    }
    EXPECT_EQ(expected_start, shards.shard_edge_count(s));
  }
}

TEST(ShardedGraph, StampsInitializedEmpty) {
  Env env;
  const auto csr = sample();
  ShardedGraph shards(env.storage, "sg", csr,
                      graph::VertexIntervals::uniform(csr.num_vertices(), 64),
                      8);
  std::vector<std::byte> block;
  shards.load_records(0, 0, shards.shard_edge_count(0), block);
  const std::size_t rec = shards.record_size();
  for (std::size_t r = 0; r * rec < block.size(); ++r) {
    std::uint16_t s0, s1;
    std::memcpy(&s0, block.data() + r * rec + shards.stamp_offset(0), 2);
    std::memcpy(&s1, block.data() + r * rec + shards.stamp_offset(1), 2);
    EXPECT_EQ(s0, ShardedGraph::kNoStamp);
    EXPECT_EQ(s1, ShardedGraph::kNoStamp);
  }
}

TEST(ShardedGraph, StoreRecordsPersists) {
  Env env;
  const auto csr = sample();
  ShardedGraph shards(env.storage, "sg", csr,
                      graph::VertexIntervals::uniform(csr.num_vertices(), 64),
                      4);
  std::vector<std::byte> block;
  shards.load_records(0, 0, shards.shard_edge_count(0), block);
  const std::uint16_t stamp = 3;
  std::memcpy(block.data() + shards.stamp_offset(0), &stamp, 2);
  const std::uint32_t payload = 0xDEADBEEF;
  std::memcpy(block.data() + shards.payload_offset(0), &payload, 4);
  shards.store_records(0, 0, block);

  std::vector<std::byte> back;
  shards.load_records(0, 0, 1, back);
  std::uint16_t s0;
  std::uint32_t p0;
  std::memcpy(&s0, back.data() + shards.stamp_offset(0), 2);
  std::memcpy(&p0, back.data() + shards.payload_offset(0), 4);
  EXPECT_EQ(s0, 3u);
  EXPECT_EQ(p0, 0xDEADBEEFu);
}

TEST(ShardedGraph, PayloadAlignmentRounding) {
  Env env;
  const auto csr = sample();
  // A 13-byte payload rounds to 16; record = 12 + 2*16 = 44.
  ShardedGraph shards(env.storage, "sg", csr,
                      graph::VertexIntervals::uniform(csr.num_vertices(), 64),
                      13);
  EXPECT_EQ(shards.payload_bytes(), 16u);
  EXPECT_EQ(shards.record_size(), 44u);
}

TEST(ShardedGraph, PartitionForShardsRespectsBudget) {
  const auto csr = sample();
  const auto iv = partition_for_shards(csr, 20, 32_KiB);
  EXPECT_GT(iv.count(), 1u);
  const auto in_deg = csr.in_degrees();
  for (IntervalId i = 0; i < iv.count(); ++i) {
    std::uint64_t bytes = 0;
    for (VertexId v = iv.begin(i); v < iv.end(i); ++v) {
      bytes += in_deg[v] * 20;
    }
    if (iv.width(i) > 1) {
      EXPECT_LE(bytes, 32_KiB);
    }
  }
}

TEST(ShardedGraph, ShardIoCategorized) {
  Env env;
  const auto csr = sample();
  ShardedGraph shards(env.storage, "sg", csr,
                      graph::VertexIntervals::uniform(csr.num_vertices(), 64),
                      4);
  const auto before = env.storage.stats().snapshot();
  std::vector<std::byte> block;
  shards.load_records(0, 0, shards.shard_edge_count(0), block);
  const auto diff = env.storage.stats().snapshot() - before;
  EXPECT_GT(diff[ssd::IoCategory::kShard].pages_read, 0u);
  EXPECT_EQ(diff[ssd::IoCategory::kCsrColIdx].pages_read, 0u);
}

}  // namespace
}  // namespace mlvc::graphchi
