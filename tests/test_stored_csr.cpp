// Tests for the on-storage partitioned CSR: construction (in-memory and
// streaming), page-accounted reads, structural updates (§V.E), and the
// external out-of-core builder.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/external_builder.hpp"
#include "graph/generators.hpp"
#include "graph/stored_csr.hpp"

namespace mlvc::graph {
namespace {

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

CsrGraph sample_graph(unsigned scale = 8, std::uint64_t seed = 4) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 6;
  p.seed = seed;
  return CsrGraph::from_edge_list(generate_rmat(p));
}

/// Read back the full adjacency of a stored graph and compare to the CSR.
void expect_equals(const StoredCsrGraph& stored, const CsrGraph& csr) {
  ASSERT_EQ(stored.num_vertices(), csr.num_vertices());
  ASSERT_EQ(stored.num_edges(), csr.num_edges());
  const auto& iv = stored.intervals();
  for (IntervalId i = 0; i < iv.count(); ++i) {
    const VertexId width = iv.width(i);
    std::vector<EdgeIndex> rowptr(width + 1);
    stored.read_local_row_ptrs(i, 0, width + 1, rowptr);
    std::vector<VertexId> colidx(rowptr.back());
    stored.read_adjacency(i, 0, rowptr.back(), colidx);
    for (VertexId lv = 0; lv < width; ++lv) {
      const VertexId v = iv.begin(i) + lv;
      const auto expected = csr.neighbors(v);
      ASSERT_EQ(rowptr[lv + 1] - rowptr[lv], expected.size())
          << "degree of " << v;
      for (std::size_t k = 0; k < expected.size(); ++k) {
        EXPECT_EQ(colidx[rowptr[lv] + k], expected[k]);
      }
      EXPECT_EQ(stored.out_degree(v), expected.size());
    }
  }
}

TEST(StoredCsr, MatchesInMemoryCsr) {
  Env env;
  const auto csr = sample_graph();
  auto iv = VertexIntervals::uniform(csr.num_vertices(), 37);
  StoredCsrGraph stored(env.storage, "g", csr, iv);
  expect_equals(stored, csr);
}

TEST(StoredCsr, WeightsRoundTrip) {
  Env env;
  EdgeList list;
  list.set_num_vertices(3);
  list.add(0, 1, 1.5f);
  list.add(0, 2, 2.5f);
  list.add(1, 2, 3.5f);
  const auto csr = CsrGraph::from_edge_list(list);
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(3, 2),
                        {.with_weights = true});
  std::vector<float> w(2);
  stored.read_values(0, 0, 2, w);
  EXPECT_FLOAT_EQ(w[0], 1.5f);
  EXPECT_FLOAT_EQ(w[1], 2.5f);
}

TEST(StoredCsr, ReadsAreChargedToCsrCategories) {
  Env env;
  const auto csr = sample_graph();
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(csr.num_vertices(), 64));
  const auto before = env.storage.stats().snapshot();
  std::vector<EdgeIndex> rowptr(2);
  stored.read_local_row_ptrs(0, 0, 2, rowptr);
  std::vector<VertexId> adj(rowptr[1] - rowptr[0]);
  stored.read_adjacency(0, rowptr[0], rowptr[1], adj);
  const auto diff = env.storage.stats().snapshot() - before;
  EXPECT_GE(diff[ssd::IoCategory::kCsrRowPtr].pages_read, 1u);
  if (!adj.empty()) {
    EXPECT_GE(diff[ssd::IoCategory::kCsrColIdx].pages_read, 1u);
  }
  EXPECT_EQ(diff[ssd::IoCategory::kShard].pages_read, 0u);
}

// ---- adjacency page cache ---------------------------------------------------

TEST(StoredCsrCache, CachedReadsMatchUncachedAndCountHits) {
  Env env;
  const auto csr = sample_graph();
  const auto iv = VertexIntervals::uniform(csr.num_vertices(), 37);
  StoredCsrGraph plain(env.storage, "p", csr, iv);
  StoredCsrGraph cached(env.storage, "c", csr, iv);
  cached.set_adjacency_cache(1_MiB);
  EXPECT_TRUE(cached.adjacency_cache_enabled());
  expect_equals(cached, csr);  // first pass: all misses, data still correct
  expect_equals(cached, csr);  // second pass: served from the cache
  expect_equals(plain, csr);

  const auto snap = env.storage.stats().snapshot();
  EXPECT_GT(snap.cache_hit_pages, 0u);
  EXPECT_GT(snap.cache_miss_pages, 0u);
}

TEST(StoredCsrCache, RepeatReadCostsNoStoragePages) {
  Env env;
  const auto csr = sample_graph();
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(csr.num_vertices(), 8));
  stored.set_adjacency_cache(4_MiB);  // big enough to hold every colidx page
  std::vector<EdgeIndex> rowptr(2);
  stored.read_local_row_ptrs(0, 0, 2, rowptr);
  ASSERT_GT(rowptr[1], rowptr[0]);
  std::vector<VertexId> adj(rowptr[1] - rowptr[0]);
  stored.read_adjacency(0, rowptr[0], rowptr[1], adj);  // warm the cache

  const auto before = env.storage.stats().snapshot();
  std::vector<VertexId> again(adj.size());
  stored.read_adjacency(0, rowptr[0], rowptr[1], again);
  const auto diff = env.storage.stats().snapshot() - before;
  EXPECT_EQ(again, adj);
  EXPECT_EQ(diff[ssd::IoCategory::kCsrColIdx].pages_read, 0u);
  EXPECT_GT(diff.cache_hit_pages, 0u);
  EXPECT_EQ(diff.cache_miss_pages, 0u);
}

TEST(StoredCsrCache, MergeInvalidatesCachedAdjacency) {
  Env env;
  const auto csr = sample_graph(6);
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(csr.num_vertices(), 16));
  stored.set_adjacency_cache(1_MiB);
  VertexId v = 0;
  while (csr.out_degree(v) == 0) ++v;
  const IntervalId i = stored.intervals().interval_of(v);
  const VertexId lv = v - stored.intervals().begin(i);
  std::vector<EdgeIndex> rowptr(stored.intervals().width(i) + 1);
  stored.read_local_row_ptrs(i, 0, rowptr.size(), rowptr);
  std::vector<VertexId> adj(rowptr[lv + 1] - rowptr[lv]);
  stored.read_adjacency(i, rowptr[lv], rowptr[lv + 1], adj);  // cache it

  VertexId extra = csr.num_vertices() - 1;
  const auto nbrs = csr.neighbors(v);
  while (std::find(nbrs.begin(), nbrs.end(), extra) != nbrs.end()) --extra;
  stored.buffer_update({StructuralUpdate::Kind::kAddEdge, v, extra, 1.0f});
  stored.merge_interval(i);

  // A stale cache would serve the pre-merge pages here.
  stored.read_local_row_ptrs(i, 0, rowptr.size(), rowptr);
  std::vector<VertexId> merged(rowptr[lv + 1] - rowptr[lv]);
  stored.read_adjacency(i, rowptr[lv], rowptr[lv + 1], merged);
  EXPECT_EQ(merged.size(), adj.size() + 1);
  EXPECT_NE(std::find(merged.begin(), merged.end(), extra), merged.end());
}

// ---- structural updates (§V.E) ---------------------------------------------

TEST(StoredCsrStructural, BufferedAddVisibleViaOverlay) {
  Env env;
  const auto csr = sample_graph(6);
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(csr.num_vertices(), 16));
  const VertexId v = 5;
  std::vector<VertexId> adjacency(csr.neighbors(v).begin(),
                                  csr.neighbors(v).end());
  // Pick a destination not already a neighbor.
  VertexId extra = 0;
  while (std::find(adjacency.begin(), adjacency.end(), extra) !=
         adjacency.end()) {
    ++extra;
  }
  stored.buffer_update({StructuralUpdate::Kind::kAddEdge, v, extra, 1.0f});
  EXPECT_EQ(stored.pending_update_count(stored.intervals().interval_of(v)), 1u);

  stored.overlay_pending(v, adjacency, nullptr);
  EXPECT_NE(std::find(adjacency.begin(), adjacency.end(), extra),
            adjacency.end());
}

TEST(StoredCsrStructural, MergeRewritesInterval) {
  Env env;
  const auto csr = sample_graph(6);
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(csr.num_vertices(), 16));
  const VertexId v = 3;
  const EdgeIndex degree_before = stored.out_degree(v);
  VertexId extra = csr.num_vertices() - 1;
  const auto nbrs = csr.neighbors(v);
  while (std::find(nbrs.begin(), nbrs.end(), extra) != nbrs.end()) --extra;

  stored.buffer_update({StructuralUpdate::Kind::kAddEdge, v, extra, 1.0f});
  const IntervalId i = stored.intervals().interval_of(v);
  stored.merge_interval(i);
  EXPECT_EQ(stored.pending_update_count(i), 0u);
  EXPECT_EQ(stored.out_degree(v), degree_before + 1);

  // The stored adjacency now contains the new edge.
  const VertexId lv = v - stored.intervals().begin(i);
  std::vector<EdgeIndex> rowptr(stored.intervals().width(i) + 1);
  stored.read_local_row_ptrs(i, 0, rowptr.size(), rowptr);
  std::vector<VertexId> adj(rowptr[lv + 1] - rowptr[lv]);
  stored.read_adjacency(i, rowptr[lv], rowptr[lv + 1], adj);
  EXPECT_NE(std::find(adj.begin(), adj.end(), extra), adj.end());
}

TEST(StoredCsrStructural, RemoveEdge) {
  Env env;
  const auto csr = sample_graph(6);
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(csr.num_vertices(), 16));
  // Find a vertex with at least one neighbor.
  VertexId v = 0;
  while (csr.out_degree(v) == 0) ++v;
  const VertexId victim = csr.neighbors(v)[0];
  const EdgeIndex degree_before = stored.out_degree(v);
  stored.buffer_update({StructuralUpdate::Kind::kRemoveEdge, v, victim, 0});
  const IntervalId i = stored.intervals().interval_of(v);
  stored.merge_interval(i);
  EXPECT_EQ(stored.out_degree(v), degree_before - 1);
  EXPECT_EQ(stored.num_edges(), csr.num_edges() - 1);
}

TEST(StoredCsrStructural, AutoMergeAtThreshold) {
  Env env;
  const auto csr = sample_graph(6);
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(csr.num_vertices(), 64),
                        {.with_weights = false, .merge_threshold = 4});
  const IntervalId i = 0;
  const VertexId v = stored.intervals().begin(i);
  // Queue 4 distinct adds: the 4th triggers the merge.
  int added = 0;
  for (VertexId dst = 0; dst < csr.num_vertices() && added < 4; ++dst) {
    const auto nbrs = csr.neighbors(v);
    if (dst != v &&
        std::find(nbrs.begin(), nbrs.end(), dst) == nbrs.end()) {
      stored.buffer_update({StructuralUpdate::Kind::kAddEdge, v, dst, 1.0f});
      ++added;
    }
  }
  EXPECT_EQ(stored.pending_update_count(i), 0u);  // merged automatically
  EXPECT_EQ(stored.out_degree(v), csr.out_degree(v) + 4);
}

TEST(StoredCsrStructural, DuplicateAddIsIdempotent) {
  Env env;
  const auto csr = sample_graph(6);
  StoredCsrGraph stored(env.storage, "g", csr,
                        VertexIntervals::uniform(csr.num_vertices(), 64));
  VertexId v = 0;
  while (csr.out_degree(v) == 0) ++v;
  const VertexId existing = csr.neighbors(v)[0];
  stored.buffer_update({StructuralUpdate::Kind::kAddEdge, v, existing, 1.0f});
  stored.merge_interval(stored.intervals().interval_of(v));
  EXPECT_EQ(stored.out_degree(v), csr.out_degree(v));
}

// ---- streaming constructor + external builder ------------------------------

TEST(ExternalBuilder, MatchesInMemoryBuildAcrossSpills) {
  Env env;
  const auto csr = sample_graph(9, 6);

  ExternalCsrBuilder::Options opts;
  opts.memory_budget_bytes = 64_KiB;  // forces many runs
  ExternalCsrBuilder builder(env.storage, "ext", csr.num_vertices(), opts);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (VertexId u : csr.neighbors(v)) builder.add_edge(v, u);
  }
  auto stored = builder.finish(8, 64_KiB);
  expect_equals(*stored, csr);
}

TEST(ExternalBuilder, UndirectedIngestMirrors) {
  Env env;
  ExternalCsrBuilder::Options opts;
  opts.make_undirected = true;
  ExternalCsrBuilder builder(env.storage, "ext", 4, opts);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  auto stored = builder.finish(8, 64_KiB);
  EXPECT_EQ(stored->num_edges(), 4u);
  EXPECT_EQ(stored->out_degree(1), 2u);
}

TEST(ExternalBuilder, DropsSelfLoopsAndDuplicates) {
  Env env;
  ExternalCsrBuilder builder(env.storage, "ext", 4, {});
  builder.add_edge(0, 1);
  builder.add_edge(0, 1);
  builder.add_edge(2, 2);
  auto stored = builder.finish(8, 64_KiB);
  EXPECT_EQ(stored->num_edges(), 1u);
}

TEST(ExternalBuilder, RejectsOutOfRangeEdges) {
  Env env;
  ExternalCsrBuilder builder(env.storage, "ext", 4, {});
  EXPECT_THROW(builder.add_edge(0, 10), Error);
}

TEST(ExternalBuilder, WeightsSurvive) {
  Env env;
  ExternalCsrBuilder::Options opts;
  opts.with_weights = true;
  ExternalCsrBuilder builder(env.storage, "ext", 3, opts);
  builder.add_edge(0, 1, 9.5f);
  auto stored = builder.finish(8, 64_KiB);
  std::vector<float> w(1);
  stored->read_values(stored->intervals().interval_of(0), 0, 1, w);
  EXPECT_FLOAT_EQ(w[0], 9.5f);
}

/// Property: external build equals in-memory build for random graphs.
class ExternalBuilderProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExternalBuilderProperty, EquivalentToInMemory) {
  Env env;
  SplitMix64 rng(GetParam());
  const VertexId n = 100 + static_cast<VertexId>(rng.next_below(400));
  EdgeList list;
  list.set_num_vertices(n);
  const std::size_t m = 500 + rng.next_below(5000);
  for (std::size_t e = 0; e < m; ++e) {
    list.add(static_cast<VertexId>(rng.next_below(n)),
             static_cast<VertexId>(rng.next_below(n)));
  }
  list.set_num_vertices(n);
  list.normalize();
  const auto csr = CsrGraph::from_edge_list(list);

  ExternalCsrBuilder::Options opts;
  opts.memory_budget_bytes = 64_KiB;
  ExternalCsrBuilder builder(env.storage, "ext", n, opts);
  // Feed edges in a scrambled order to exercise the external sort.
  auto edges = std::vector<Edge>(list.edges().begin(), list.edges().end());
  std::shuffle(edges.begin(), edges.end(), rng);
  for (const Edge& e : edges) builder.add_edge(e.src, e.dst);
  auto stored = builder.finish(8, 32_KiB);
  expect_equals(*stored, csr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExternalBuilderProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace mlvc::graph
