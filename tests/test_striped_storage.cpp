// Multi-device striped storage: stripe-mapping algebra, byte-identity of
// striped blobs vs the single-file layout, manifest versioning / v1
// compatibility, per-device ring isolation under concurrent batches (the
// TSan job builds this binary), typed give-up errors naming the failing
// device, the DeviceModel per-device channel fix, and the engine
// equivalence matrix across devices × combine placement × pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <thread>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/wcc.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "multilog/device_combine.hpp"
#include "ssd/fault_injector.hpp"
#include "ssd/storage.hpp"
#include "ssd/uring_io.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

/// Scrub the stripe env overrides for the test's duration — Storage
/// construction reads MLVC_DEVICES/MLVC_STRIPE_UNIT, and a CI matrix leg
/// exporting them must not change what these tests assert.
class ScopedStripeEnv {
 public:
  ScopedStripeEnv() {
    save("MLVC_DEVICES", devices_);
    save("MLVC_STRIPE_UNIT", unit_);
    ::unsetenv("MLVC_DEVICES");
    ::unsetenv("MLVC_STRIPE_UNIT");
  }
  ~ScopedStripeEnv() {
    restore("MLVC_DEVICES", devices_);
    restore("MLVC_STRIPE_UNIT", unit_);
  }

 private:
  static void save(const char* name, std::optional<std::string>& slot) {
    if (const char* v = std::getenv(name)) slot = v;
  }
  static void restore(const char* name,
                      const std::optional<std::string>& slot) {
    if (slot) {
      ::setenv(name, slot->c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  std::optional<std::string> devices_;
  std::optional<std::string> unit_;
};

ssd::DeviceConfig striped_config(unsigned devices,
                                 std::size_t unit = 16_KiB,
                                 std::size_t page = 4_KiB) {
  ssd::DeviceConfig d;
  d.page_size = page;
  d.num_devices = devices;
  d.stripe_unit_bytes = unit;
  return d;
}

std::vector<char> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<char> out(n);
  for (auto& c : out) c = static_cast<char>(rng());
  return out;
}

// ---- stripe mapping algebra ------------------------------------------------

TEST(StripeMapping, SingleDeviceIsIdentity) {
  unsigned calls = 0;
  ssd::for_each_stripe_segment(
      12345, 678, 16_KiB, 1,
      [&](unsigned dev, std::uint64_t dev_off, std::size_t buf_off,
          std::size_t len) {
        ++calls;
        EXPECT_EQ(dev, 0u);
        EXPECT_EQ(dev_off, 12345u);
        EXPECT_EQ(buf_off, 0u);
        EXPECT_EQ(len, 678u);
      });
  EXPECT_EQ(calls, 1u);
}

TEST(StripeMapping, SegmentsTileTheRangeExactlyOnce) {
  const std::size_t unit = 4096;
  for (unsigned ndev : {2u, 3u, 4u, 7u}) {
    for (const auto& [offset, len] :
         {std::pair<std::uint64_t, std::size_t>{0, 10 * unit},
          {unit - 1, 2 * unit},
          {5 * unit + 17, 3 * unit + 100},
          {123, 1}}) {
      std::vector<char> covered(len, 0);
      ssd::for_each_stripe_segment(
          offset, len, unit, ndev,
          [&](unsigned dev, std::uint64_t dev_off, std::size_t buf_off,
              std::size_t seg) {
            ASSERT_LT(dev, ndev);
            // The inverse map must land back on the logical offset.
            const std::uint64_t stripe =
                (dev_off / unit) * ndev + dev;
            EXPECT_EQ(stripe * unit + dev_off % unit, offset + buf_off);
            for (std::size_t k = 0; k < seg; ++k) covered[buf_off + k]++;
          });
      for (std::size_t k = 0; k < len; ++k) {
        ASSERT_EQ(covered[k], 1) << "byte " << k << " covered wrong";
      }
    }
  }
}

// ---- byte identity vs single file ------------------------------------------

TEST(StripedStorage, RoundTripMatchesSingleFile) {
  ScopedStripeEnv env;
  const auto data = pattern_bytes(700 * 1024 + 333, 42);

  ssd::TempDir flat_dir;
  ssd::Storage flat(flat_dir.path(), striped_config(1));
  ssd::Blob& flat_blob = flat.create_blob("b", ssd::IoCategory::kMisc);
  flat_blob.write(0, data.data(), data.size());

  for (unsigned ndev : {2u, 4u}) {
    ssd::TempDir dir;
    ssd::Storage storage(dir.path(), striped_config(ndev));
    ASSERT_EQ(storage.num_devices(), ndev);
    ssd::Blob& blob = storage.create_blob("b", ssd::IoCategory::kMisc);
    blob.write(0, data.data(), data.size());
    EXPECT_EQ(blob.size(), flat_blob.size());

    // Whole-extent read, scattered read_multi, and unaligned slices must
    // all see the exact bytes the single-file layout serves.
    std::vector<char> back(data.size());
    blob.read(0, back.data(), back.size());
    EXPECT_EQ(back, data);

    std::vector<char> s1(40000), s2(1), s3(17000);
    std::vector<ssd::ReadOp> ops = {
        {16_KiB - 7, s1.data(), s1.size()},
        {0, s2.data(), s2.size()},
        {data.size() - s3.size(), s3.data(), s3.size()},
    };
    blob.read_multi(ops);
    EXPECT_TRUE(std::equal(s1.begin(), s1.end(), data.begin() + 16_KiB - 7));
    EXPECT_EQ(s2[0], data[0]);
    EXPECT_TRUE(std::equal(s3.begin(), s3.end(),
                           data.end() - static_cast<long>(s3.size())));
  }
}

TEST(StripedStorage, AppendTruncateMatchReferenceBuffer) {
  ScopedStripeEnv env;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), striped_config(3, 8_KiB));
  ssd::Blob& blob = storage.create_blob("log", ssd::IoCategory::kMessageLog);

  std::vector<char> reference;
  std::mt19937 rng(7);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng() % (20 * 1024);
    const auto chunk = pattern_bytes(n, rng());
    const std::uint64_t at = blob.append(chunk.data(), chunk.size());
    EXPECT_EQ(at, reference.size());
    reference.insert(reference.end(), chunk.begin(), chunk.end());
    if (round % 11 == 10) {
      const std::uint64_t cut = reference.size() * 2 / 3;
      blob.truncate(cut);
      reference.resize(cut);
    }
  }
  std::vector<char> back(reference.size());
  blob.read(0, back.data(), back.size());
  EXPECT_EQ(back, reference);
}

TEST(StripedStorage, ReopenReconstructsSizeAndBytes) {
  ScopedStripeEnv env;
  ssd::TempDir dir;
  const auto data = pattern_bytes(200 * 1024 + 11, 9);
  {
    ssd::Storage storage(dir.path(), striped_config(4));
    ssd::Blob& blob = storage.create_blob("ckpt", ssd::IoCategory::kMisc);
    blob.write(0, data.data(), data.size());
    blob.sync();
  }
  // Fresh Storage, default config: the manifest restores the 4-device
  // layout and the inverse stripe map restores the logical size.
  ssd::Storage reopened(dir.path());
  EXPECT_EQ(reopened.num_devices(), 4u);
  ssd::Blob& blob = reopened.open_blob("ckpt");
  ASSERT_EQ(blob.size(), data.size());
  std::vector<char> back(data.size());
  blob.read(0, back.data(), back.size());
  EXPECT_EQ(back, data);
}

// ---- manifest versioning & v1 compatibility --------------------------------

TEST(StripeManifest, V1StoreWithoutManifestOpensSingleDevice) {
  ScopedStripeEnv env;
  ssd::TempDir dir;
  const auto data = pattern_bytes(50 * 1024, 3);
  {
    ssd::Storage v1(dir.path(), striped_config(1));
    v1.create_blob("g", ssd::IoCategory::kMisc).write(0, data.data(),
                                                      data.size());
  }
  // Even under MLVC_DEVICES=4 a manifest-less, non-empty directory must
  // keep its single-file layout — restriping in place would scramble it.
  ::setenv("MLVC_DEVICES", "4", 1);
  ssd::Storage reopened(dir.path());
  EXPECT_EQ(reopened.num_devices(), 1u);
  std::vector<char> back(data.size());
  reopened.open_blob("g").read(0, back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST(StripeManifest, EnvCreatesStripedStoreOnFreshDir) {
  ScopedStripeEnv env;
  ::setenv("MLVC_DEVICES", "2", 1);
  ::setenv("MLVC_STRIPE_UNIT", "32768", 1);
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  EXPECT_EQ(storage.num_devices(), 2u);
  EXPECT_EQ(storage.stripe_unit(), 32768u);
  ssd::StripeManifest m;
  ASSERT_TRUE(ssd::read_stripe_manifest(dir.path(), &m));
  EXPECT_EQ(m.num_devices, 2u);
  EXPECT_EQ(m.stripe_unit_bytes, 32768u);
}

TEST(StripeManifest, UnknownVersionIsATypedError) {
  ScopedStripeEnv env;
  ssd::TempDir dir;
  ssd::StripeManifest m;
  m.version = 99;
  m.num_devices = 2;
  m.stripe_unit_bytes = 128_KiB;
  ssd::write_stripe_manifest(dir.path(), m);
  EXPECT_THROW(ssd::Storage(dir.path()), Error);
}

// ---- per-device rings under concurrency (TSan scope) -----------------------

TEST(StripedStorage, ConcurrentReadBatchesAreIsolatedPerDevice) {
  ScopedStripeEnv env;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), striped_config(4));
  // uring if the kernel allows, else the threadpool path — the isolation
  // property (no shared mutable state between device submissions) must
  // hold under whichever backend is active.
  if (ssd::UringIo::probe().available) {
    storage.set_io_backend(ssd::IoBackendKind::kUring, 16);
  }
  const auto data = pattern_bytes(2 * 1024 * 1024, 21);
  ssd::Blob& blob = storage.create_blob("hot", ssd::IoCategory::kCsrColIdx);
  blob.write(0, data.data(), data.size());

  constexpr unsigned kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<unsigned> mismatches{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(100 + t);
      std::vector<char> buf;
      for (int round = 0; round < 25; ++round) {
        std::vector<ssd::ReadOp> ops;
        std::size_t total = 0;
        std::vector<std::pair<std::size_t, std::size_t>> slices;
        for (int k = 0; k < 12; ++k) {
          const std::size_t len = 1 + rng() % 60000;
          const std::size_t off = rng() % (data.size() - len);
          slices.emplace_back(off, len);
          total += len;
        }
        buf.assign(total, 0);
        std::size_t cursor = 0;
        for (const auto& [off, len] : slices) {
          ops.push_back({off, buf.data() + cursor, len});
          cursor += len;
        }
        blob.read_multi(ops);
        cursor = 0;
        for (const auto& [off, len] : slices) {
          if (!std::equal(buf.begin() + cursor, buf.begin() + cursor + len,
                          data.begin() + off)) {
            mismatches.fetch_add(1);
          }
          cursor += len;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ---- faults on striped stores ----------------------------------------------

TEST(StripedStorage, GiveUpRaisesTypedIoErrorNamingADeviceFile) {
  ScopedStripeEnv env;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), striped_config(4));
  ssd::RetryPolicy fast;
  fast.max_attempts = 2;
  fast.base_delay_us = 0;
  storage.set_retry_policy(fast);
  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  const auto data = pattern_bytes(64 * 1024, 5);
  blob.write(0, data.data(), data.size());

  storage.set_fault_injector(std::make_shared<ssd::FaultInjector>(
      ssd::FaultInjector::named_profile("giveup", 1.0), 17));
  std::vector<char> out(data.size());
  try {
    blob.read(0, out.data(), out.size());
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    // The error must name the backing file of the device that failed.
    EXPECT_NE(std::string(e.what()).find("dev"), std::string::npos)
        << e.what();
  }
  EXPECT_GT(storage.stats().snapshot().io_giveup_count, 0u);
}

// ---- DeviceModel: per-device channel groups --------------------------------

TEST(DeviceModelStriped, ChannelGroupsComeFromTheDeviceId) {
  ssd::DeviceConfig cfg;
  cfg.num_channels = 4;
  cfg.num_devices = 4;
  cfg.sequential_factor = 1.0;
  ssd::DeviceModel dev(cfg);
  // Same (blob, page) hash on different devices must land in different
  // channel groups — this is exactly the double-counting fix: parallelism
  // comes from the stripe layout, not from the offset hash.
  for (unsigned d = 0; d < 4; ++d) {
    for (std::uint64_t p = 0; p < 8; ++p) {
      dev.record(1, p, d, /*is_write=*/false, 1.0);
    }
  }
  // 32 pages over 4 devices × 4 channels = 2 pages per channel.
  EXPECT_DOUBLE_EQ(dev.modeled_seconds(), 2 * cfg.page_read_us * 1e-6);
}

TEST(DeviceModelStriped, StripedReadsModelFasterThanSingleDevice) {
  ScopedStripeEnv env;
  const auto data = pattern_bytes(4 * 1024 * 1024, 77);
  const auto modeled = [&](unsigned ndev) {
    ssd::TempDir dir;
    auto cfg = striped_config(ndev, 128_KiB, 16_KiB);
    cfg.sequential_factor = 1.0;  // isolate channel parallelism
    ssd::Storage storage(dir.path(), cfg);
    ssd::Blob& blob = storage.create_blob("log", ssd::IoCategory::kMessageLog);
    blob.write(0, data.data(), data.size());
    const auto before = storage.device().snapshot();
    std::vector<char> buf(data.size());
    blob.read(0, buf.data(), buf.size());
    return storage.device().modeled_seconds_between(before,
                                                    storage.device().snapshot());
  };
  const double t1 = modeled(1);
  const double t4 = modeled(4);
  // 4 devices contribute 4× the channels; the same page traffic must model
  // meaningfully faster (allow slack for hash imbalance across channels).
  EXPECT_LT(t4, t1 / 2.0);
}

// ---- device-side combine unit ----------------------------------------------

TEST(DeviceCombine, MatchesHostCombineForMinOperator) {
  using Msg = std::uint32_t;
  std::vector<multilog::Record<Msg>> records;
  std::mt19937 rng(13);
  for (int i = 0; i < 20000; ++i) {
    records.push_back({static_cast<VertexId>(rng() % 512),
                       static_cast<Msg>(rng())});
  }
  const auto* raw = reinterpret_cast<const std::byte*>(records.data());
  const std::span<const std::byte> bytes(raw,
                                         records.size() * sizeof(records[0]));
  const auto combine = [](Msg a, Msg b) { return std::min(a, b); };
  const auto host = multilog::sort_and_group<Msg>(
      bytes, 0, 512, SortGroupPath::kAuto, combine);
  multilog::DeviceCombineStats stats;
  const auto device = multilog::device_side_combine<Msg>(
      bytes, /*v2_format=*/false, 0, 512, SortGroupPath::kAuto,
      /*num_devices=*/4, /*stripe_unit=*/4096, combine, &stats);

  ASSERT_EQ(device.records.size(), host.records.size());
  for (std::size_t i = 0; i < host.records.size(); ++i) {
    EXPECT_EQ(device.records[i].dst, host.records[i].dst);
    EXPECT_EQ(device.records[i].payload, host.records[i].payload);
  }
  EXPECT_EQ(device.offsets, host.offsets);
  EXPECT_EQ(device.decoded, host.decoded);
  EXPECT_EQ(stats.records_in, records.size());
  EXPECT_EQ(stats.raw_bytes, bytes.size());
  // The reduction must actually shrink bus traffic on this dense log.
  EXPECT_LT(stats.bus_bytes, stats.raw_bytes);
  EXPECT_LT(stats.records_out, stats.records_in);
}

// ---- engine equivalence matrix ---------------------------------------------

graph::CsrGraph stripe_graph() {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  p.seed = 23;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

template <core::VertexApp App>
std::vector<typename App::Value> run_striped(const graph::CsrGraph& csr,
                                             App app, unsigned devices,
                                             CombinePlacement placement,
                                             bool pipeline) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), striped_config(devices, 16_KiB));
  auto opts = testing_options();
  opts.max_supersteps = 60;
  opts.enable_pipeline = pipeline;
  opts.combine_placement = placement;
  auto intervals = core::partition_for_app<App>(csr, opts);
  graph::StoredCsrGraph stored(storage, "g", csr, intervals);
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  engine.run();
  return engine.values();
}

TEST(StripedEngineMatrix, BfsAndWccAreExactAcrossTheMatrix) {
  ScopedStripeEnv env;
  const auto csr = stripe_graph();
  const auto bfs_ref =
      run_striped(csr, apps::Bfs{.source = 3}, 1, CombinePlacement::kHost,
                  /*pipeline=*/true);
  const auto wcc_ref = run_striped(csr, apps::Wcc{}, 1,
                                   CombinePlacement::kHost, /*pipeline=*/true);
  for (unsigned devices : {2u, 4u}) {
    for (const auto placement :
         {CombinePlacement::kHost, CombinePlacement::kDevice}) {
      for (const bool pipeline : {false, true}) {
        SCOPED_TRACE(::testing::Message()
                     << "devices=" << devices << " placement="
                     << to_string(placement) << " pipeline=" << pipeline);
        // min-combines are idempotent: device-side fold order cannot
        // change the result, so the matrix must be byte-exact.
        EXPECT_EQ(run_striped(csr, apps::Bfs{.source = 3}, devices,
                              placement, pipeline),
                  bfs_ref);
        EXPECT_EQ(run_striped(csr, apps::Wcc{}, devices, placement, pipeline),
                  wcc_ref);
      }
    }
  }
}

TEST(StripedEngineMatrix, PageRankMatchesWithinFloatTolerance) {
  ScopedStripeEnv env;
  const auto csr = stripe_graph();
  const auto ref = run_striped(csr, apps::PageRank{}, 1,
                               CombinePlacement::kHost, /*pipeline=*/true);
  for (unsigned devices : {2u, 4u}) {
    for (const auto placement :
         {CombinePlacement::kHost, CombinePlacement::kDevice}) {
      SCOPED_TRACE(::testing::Message() << "devices=" << devices
                                        << " placement="
                                        << to_string(placement));
      const auto got = run_striped(csr, apps::PageRank{}, devices, placement,
                                   /*pipeline=*/true);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t v = 0; v < ref.size(); ++v) {
        // Device placement folds float sums per device before the host
        // merge; values agree within rounding, not bit-for-bit.
        EXPECT_NEAR(got[v], ref[v], 1e-4) << "vertex " << v;
      }
    }
  }
}

// The near-storage combine operates on pushed log records; pin the
// direction so the adaptive CI leg (MLVC_DIRECTION=adaptive), which pulls
// PageRank's dense supersteps and deletes that log traffic outright,
// doesn't erase the quantity under test.
class ScopedPushDirection {
 public:
  ScopedPushDirection() {
    if (const char* v = std::getenv("MLVC_DIRECTION")) prev_ = v;
    ::setenv("MLVC_DIRECTION", "push", 1);
  }
  ~ScopedPushDirection() {
    if (prev_) {
      ::setenv("MLVC_DIRECTION", prev_->c_str(), 1);
    } else {
      ::unsetenv("MLVC_DIRECTION");
    }
  }

 private:
  std::optional<std::string> prev_;
};

TEST(StripedEngineMatrix, DeviceCombineShrinksBusTraffic) {
  ScopedStripeEnv env;
  ScopedPushDirection push_env;
  const auto csr = stripe_graph();
  const auto run_stats = [&](CombinePlacement placement) {
    ssd::TempDir dir;
    ssd::Storage storage(dir.path(), striped_config(4, 16_KiB));
    auto opts = testing_options();
    opts.max_supersteps = 10;
    opts.combine_placement = placement;
    auto intervals = core::partition_for_app<apps::PageRank>(csr, opts);
    graph::StoredCsrGraph stored(storage, "g", csr, intervals);
    core::MultiLogVCEngine<apps::PageRank> engine(stored, apps::PageRank{},
                                                  opts);
    return engine.run();
  };
  const auto host = run_stats(CombinePlacement::kHost);
  const auto device = run_stats(CombinePlacement::kDevice);
  EXPECT_EQ(host.combine_placement, "host");
  EXPECT_EQ(device.combine_placement, "device");
  EXPECT_EQ(device.num_devices, 4u);
  ASSERT_GT(host.bytes_crossed_bus(), 0u);
  ASSERT_GT(device.bytes_crossed_bus(), 0u);
  // The point of the feature: fewer bytes cross the bus when the combine
  // runs in the devices.
  EXPECT_LT(device.bytes_crossed_bus(), host.bytes_crossed_bus());
  EXPECT_GT(device.device_combine_records_in(),
            device.device_combine_records_out());
  EXPECT_EQ(host.device_combine_records_in(), 0u);
}

}  // namespace
}  // namespace mlvc
