// A lightweight in-memory vertex context for unit-testing application
// process() functions in isolation from any engine.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mlvc::testing {

template <typename App>
class MockContext {
 public:
  using Value = typename App::Value;
  using Message = typename App::Message;

  MockContext(VertexId id, Superstep superstep, Value value,
              std::vector<VertexId> out_edges, VertexId num_vertices = 1000,
              std::uint64_t seed = 1)
      : id_(id),
        superstep_(superstep),
        value_(value),
        out_edges_(std::move(out_edges)),
        num_vertices_(num_vertices),
        seed_(seed) {}

  VertexId id() const { return id_; }
  Superstep superstep() const { return superstep_; }
  VertexId num_vertices() const { return num_vertices_; }

  const Value& value() const { return value_; }
  void set_value(const Value& v) {
    value_ = v;
    value_changed_ = true;
  }

  std::size_t out_degree() const { return out_edges_.size(); }
  VertexId out_edge(std::size_t i) const { return out_edges_[i]; }
  float out_weight(std::size_t i) const {
    return weights_.empty() ? 1.0f : weights_[i];
  }
  std::span<const VertexId> out_edges() const { return out_edges_; }

  void send(VertexId dst, const Message& m) { sent_.emplace_back(dst, m); }
  void send_to_all_neighbors(const Message& m) {
    for (VertexId dst : out_edges_) send(dst, m);
  }

  void deactivate() { deactivated_ = true; }

  void add_edge(VertexId dst, float weight = 1.0f) {
    added_edges_.emplace_back(dst, weight);
  }
  void remove_edge(VertexId dst) { removed_edges_.push_back(dst); }

  SplitMix64 rng() const { return stream_for(seed_, id_, superstep_); }

  // ---- inspection ----------------------------------------------------------
  const std::vector<std::pair<VertexId, Message>>& sent() const {
    return sent_;
  }
  bool deactivated() const { return deactivated_; }
  bool value_changed() const { return value_changed_; }
  const std::vector<std::pair<VertexId, float>>& added_edges() const {
    return added_edges_;
  }

 private:
  VertexId id_;
  Superstep superstep_;
  Value value_;
  std::vector<VertexId> out_edges_;
  std::vector<float> weights_;
  VertexId num_vertices_;
  std::uint64_t seed_;
  std::vector<std::pair<VertexId, Message>> sent_;
  std::vector<std::pair<VertexId, float>> added_edges_;
  std::vector<VertexId> removed_edges_;
  bool deactivated_ = false;
  bool value_changed_ = false;
};

}  // namespace mlvc::testing
