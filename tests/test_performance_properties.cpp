// Performance-property regression tests: the paper's headline I/O claims,
// asserted over the deterministic page counters so a behavioural regression
// (loader stops coalescing, logs stop batching, GraphChi stops reloading
// shards…) fails CI rather than silently skewing the benches.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/mis.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graphchi/engine.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

ssd::DeviceConfig dev4k() {
  ssd::DeviceConfig d;
  d.page_size = 4_KiB;
  return d;
}

graph::CsrGraph perf_graph(std::uint64_t seed = 77) {
  graph::RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

template <core::VertexApp App>
core::RunStats run_mlvc(const graph::CsrGraph& csr, App app,
                        Superstep max_steps = 30) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), dev4k());
  auto opts = testing_options();
  opts.memory_budget_bytes = 512_KiB;
  opts.max_supersteps = max_steps;
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts));
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  return engine.run();
}

template <core::VertexApp App>
core::RunStats run_graphchi(const graph::CsrGraph& csr, App app,
                            Superstep max_steps = 30) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path(), dev4k());
  graphchi::GraphChiOptions opts;
  opts.memory_budget_bytes = 512_KiB;
  opts.max_supersteps = max_steps;
  graphchi::GraphChiEngine<App> engine(storage, csr, app, opts);
  return engine.run();
}

TEST(PerformanceProperties, MlvcIoTracksActivity) {
  // The core claim: MultiLogVC's per-superstep page traffic shrinks with
  // the active set. Compare the busiest superstep against the last
  // "real" one (BFS tail): at least a 5x decline.
  const auto csr = perf_graph();
  const auto stats = run_mlvc(csr, apps::Bfs{.source = 0});
  ASSERT_GE(stats.supersteps.size(), 4u);
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < stats.supersteps.size(); ++i) {
    if (stats.supersteps[i].io.total_pages() >
        stats.supersteps[peak_idx].io.total_pages()) {
      peak_idx = i;
    }
  }
  const std::uint64_t peak = stats.supersteps[peak_idx].io.total_pages();
  std::uint64_t tail_min = UINT64_MAX;
  for (std::size_t i = peak_idx + 1; i < stats.supersteps.size(); ++i) {
    tail_min = std::min(tail_min, stats.supersteps[i].io.total_pages());
  }
  ASSERT_NE(tail_min, UINT64_MAX);  // peak must not be the final superstep
  EXPECT_GT(peak, 3 * std::max<std::uint64_t>(1, tail_min))
      << "MultiLogVC I/O no longer tracks the active set";
}

TEST(PerformanceProperties, GraphChiIoDoesNotTrackActivity) {
  // The contrast claim (paper §II.A): GraphChi's *read* traffic stays at
  // whole-graph scale every superstep regardless of activity.
  const auto csr = perf_graph();
  const auto stats = run_graphchi(csr, apps::Bfs{.source = 0});
  ASSERT_GE(stats.supersteps.size(), 4u);
  std::uint64_t min_reads = UINT64_MAX, max_reads = 0;
  for (const auto& s : stats.supersteps) {
    min_reads = std::min(min_reads, s.io.total_pages_read());
    max_reads = std::max(max_reads, s.io.total_pages_read());
  }
  EXPECT_LT(max_reads, 2 * min_reads)
      << "GraphChi shard reads should be roughly constant per superstep";
}

TEST(PerformanceProperties, MlvcReadsFewerPagesThanGraphChiOnSparseApps) {
  const auto csr = perf_graph();
  const auto mlvc = run_mlvc(csr, apps::Bfs{.source = 0});
  const auto gc = run_graphchi(csr, apps::Bfs{.source = 0});
  EXPECT_LT(mlvc.total_pages() * 3, gc.total_pages())
      << "expected >=3x page advantage on BFS";

  const auto mlvc_mis = run_mlvc(csr, apps::Mis{});
  const auto gc_mis = run_graphchi(csr, apps::Mis{});
  EXPECT_LT(mlvc_mis.total_pages() * 2, gc_mis.total_pages())
      << "expected >=2x page advantage on MIS";
}

TEST(PerformanceProperties, LogTrafficProportionalToMessages) {
  // Multi-log writes are bounded by messages x record size plus one top
  // page per interval — no write amplification beyond page rounding.
  const auto csr = perf_graph(78);
  const auto stats = run_mlvc(csr, apps::Cdlp{}, 5);
  for (const auto& s : stats.supersteps) {
    const auto& log = s.io[ssd::IoCategory::kMessageLog];
    const std::uint64_t message_bytes =
        s.messages_produced * (sizeof(VertexId) + sizeof(apps::Cdlp::Message));
    EXPECT_LE(log.bytes_written, message_bytes + 4_KiB * 512)
        << "superstep " << s.superstep << " write amplification";
  }
}

TEST(PerformanceProperties, RowPtrTrafficSmallFractionOfAdjacency) {
  // Row-pointer windows are 8 B/vertex; adjacency dominates. A regression
  // in window coalescing shows up as rowptr pages ballooning.
  const auto csr = perf_graph(79);
  const auto stats = run_mlvc(csr, apps::Cdlp{}, 5);
  std::uint64_t rowptr = 0, colidx = 0;
  for (const auto& s : stats.supersteps) {
    rowptr += s.io[ssd::IoCategory::kCsrRowPtr].pages_read;
    colidx += s.io[ssd::IoCategory::kCsrColIdx].pages_read;
  }
  EXPECT_LT(rowptr, colidx) << "row-pointer reads should not dominate";
}

TEST(PerformanceProperties, ModeledTimeDeterministic) {
  // The device model is a pure function of the I/O trace: two identical
  // runs report identical modeled storage time and page counts.
  const auto csr = perf_graph(80);
  const auto a = run_mlvc(csr, apps::Cdlp{}, 5);
  const auto b = run_mlvc(csr, apps::Cdlp{}, 5);
  EXPECT_DOUBLE_EQ(a.modeled_storage_seconds(), b.modeled_storage_seconds());
  EXPECT_EQ(a.total_pages(), b.total_pages());
}

}  // namespace
}  // namespace mlvc
