// End-to-end integration test of the CLI tools: generate → inspect →
// convert → run, exercising the same binaries a user would.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "graph/stored_csr.hpp"
#include "ssd/storage.hpp"

namespace mlvc {
namespace {

int run_tool(const std::string& command) {
  return std::system((command + " > /dev/null 2>&1").c_str());
}

TEST(Tools, GenerateInspectRunPipeline) {
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();

  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type chain --vertices 500 --out " + graph),
            0);
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_INFO) + " --graph " + graph), 0);

  const std::string json = (dir.path() / "stats.json").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                     " --app bfs --source 0 --budget 1M --page-size 4K" +
                     " --supersteps 600 --json " + json),
            0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"engine\":\"MultiLogVC\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"app\":\"bfs\""), std::string::npos);
}

TEST(Tools, ConvertSnapToBinary) {
  ssd::TempDir dir;
  const std::string snap = (dir.path() / "edges.txt").string();
  {
    std::ofstream out(snap);
    out << "# tiny graph\n0 1\n1 2\n2 3\n";
  }
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_CONVERT) + " --in " + snap +
                     " --out " + graph),
            0);
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                     " --app wcc --budget 1M --page-size 4K"),
            0);
}

TEST(Tools, ConvertStoreBetweenFormats) {
  // Build a v2 stored graph, then drive mlvc_convert over the directory:
  // --stats must report the format, and a v2 -> v1 -> v2 conversion chain
  // must preserve the adjacency exactly.
  ssd::TempDir dir("convert_store");
  graph::RmatParams params;
  params.scale = 9;
  params.edge_factor = 4;
  const auto csr = graph::CsrGraph::from_edge_list(generate_rmat(params));
  const auto intervals = graph::VertexIntervals::uniform(csr.num_vertices(), 128);
  const std::string src_dir = (dir.path() / "v2").string();
  {
    ssd::Storage storage(src_dir);
    graph::StoredCsrGraph stored(storage, "g", csr, intervals,
                                 {.format = OnDiskFormat::kV2});
  }

  const std::string stats_log = (dir.path() / "stats.log").string();
  ASSERT_EQ(std::system((std::string(MLVC_TOOL_CONVERT) + " --store " +
                         src_dir + " --stats > " + stats_log + " 2>&1")
                            .c_str()),
            0);
  {
    std::ifstream in(stats_log);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("format v2"), std::string::npos) << buf.str();
  }

  const std::string v1_dir = (dir.path() / "v1").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_CONVERT) + " --store " + src_dir +
                     " --out-store " + v1_dir + " --format v1"),
            0);
  const std::string v2_dir = (dir.path() / "v2_again").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_CONVERT) + " --store " + v1_dir +
                     " --out-store " + v2_dir + " --format v2"),
            0);

  for (const auto& [path, format] :
       {std::pair{v1_dir, OnDiskFormat::kV1}, {v2_dir, OnDiskFormat::kV2}}) {
    ssd::Storage storage(path);
    auto reopened = graph::StoredCsrGraph::open(storage, "g");
    ASSERT_EQ(reopened->format(), format);
    ASSERT_EQ(reopened->num_edges(), csr.num_edges());
    for (IntervalId i = 0; i < intervals.count(); ++i) {
      const EdgeIndex edges = reopened->interval_edge_count(i);
      std::vector<VertexId> got(edges);
      if (edges > 0) reopened->read_adjacency(i, 0, edges, got);
      std::vector<VertexId> want;
      for (VertexId v = intervals.begin(i); v < intervals.end(i); ++v) {
        const auto nbrs = csr.neighbors(v);
        want.insert(want.end(), nbrs.begin(), nbrs.end());
      }
      ASSERT_EQ(got, want) << "interval " << i << " of " << path;
    }
  }

  // A bogus store directory must fail cleanly.
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_CONVERT) + " --store " +
                     (dir.path() / "nope").string() + " --stats"),
            0);
}

TEST(Tools, BadInvocationsFailCleanly) {
  // Unknown option, missing required arg, unknown app: nonzero exit, no
  // crash.
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_GEN) + " --bogus 1"), 0);
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_INFO)), 0);
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_RUN) +
                     " --graph /nonexistent --app bfs"),
            0);
}

TEST(Tools, CrashtestSingleCycleRecoversBfs) {
  // One victim/recover cycle: the child is killed at an injected write with
  // a torn trailing page, recovery resumes from the atomic checkpoint, and
  // the recovered vertex values must equal a clean run's.
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_CRASHTEST) +
                     " --profile torn-page --seed 11 --crash-after 25"),
            0);
}

TEST(Tools, ServeMixedWorkloadVerifies) {
  // Daemon smoke test: many concurrent mixed queries over one shared graph,
  // with the deterministic ones re-run serially and hash-compared.
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type rmat --scale 9 --edge-factor 6 --out " + graph),
            0);
  const std::string log = (dir.path() / "serve.log").string();
  ASSERT_EQ(std::system((std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                         " --random 40 --concurrency 8 --verify 1" +
                         " --budget 4M --pool 64M --cache 256K" +
                         " --page-size 4K > " + log + " 2>&1")
                            .c_str()),
            0);
  std::ifstream in(log);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("(0 failed"), std::string::npos) << buf.str();
  EXPECT_NE(buf.str().find("0 mismatches"), std::string::npos) << buf.str();
}

TEST(Tools, ServeScriptModeAndBadSpecs) {
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type chain --vertices 300 --out " + graph),
            0);
  const std::string script = (dir.path() / "queries.txt").string();
  {
    std::ofstream out(script);
    out << "# mixed hand-written workload\n"
        << "bfs 0\nbfs 123\nwcc\npagerank\nrw 7\n";
  }
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                     " --script " + script +
                     " --concurrency 4 --verify 1 --budget 4M --page-size 4K"),
            0);
  // Unknown app name and out-of-range source must fail cleanly, not crash.
  {
    std::ofstream out(script);
    out << "zork 1\n";
  }
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                     " --script " + script),
            0);
  {
    std::ofstream out(script);
    out << "bfs 99999999\n";
  }
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                     " --script " + script),
            0);
}

TEST(Tools, RunScheduledPrdeltaReportsPolicy) {
  // mlvc_run end-to-end over the scheduled async path: delta-PageRank under
  // hub-degree ordering, with the resolved policy surfaced in the JSON.
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type rmat --scale 9 --edge-factor 6 --out " + graph),
            0);
  const std::string json = (dir.path() / "stats.json").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                     " --app prdelta --model async --schedule hub-degree" +
                     " --budget 1M --page-size 4K --supersteps 100 --json " +
                     json),
            0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"app\":\"pagerank_delta\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"schedule_policy\":\"hub-degree\""),
            std::string::npos);
  // An unknown policy must fail cleanly, not fall back silently.
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                     " --app prdelta --schedule zork"),
            0);
}

TEST(Tools, ServeMixedSchedulePolicies) {
  // One shared RuntimeContext serving BSP queries next to async scheduled
  // ones: the schedule= suffix is per-query, and the deterministic BSP
  // queries still verify against their serial re-runs.
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type rmat --scale 9 --edge-factor 6 --out " + graph),
            0);
  const std::string script = (dir.path() / "queries.txt").string();
  {
    std::ofstream out(script);
    out << "bfs 0\n"
        << "prdelta\n"
        << "prdelta schedule=hub-degree\n"
        << "wcc schedule=fifo\n"
        << "sssp 3 schedule=log-bytes\n"
        << "pagerank\n";
  }
  const std::string log = (dir.path() / "serve.log").string();
  ASSERT_EQ(std::system((std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                         " --script " + script +
                         " --concurrency 4 --verify 1 --budget 4M" +
                         " --page-size 4K > " + log + " 2>&1")
                            .c_str()),
            0);
  std::ifstream in(log);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("(0 failed"), std::string::npos) << buf.str();
  EXPECT_NE(buf.str().find("0 mismatches"), std::string::npos) << buf.str();
  // A malformed suffix must be rejected at parse time, not at run time.
  {
    std::ofstream out(script);
    out << "bfs 0 schedule=zork\n";
  }
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                     " --script " + script),
            0);
}

TEST(Tools, EveryAppRunsOnEveryEngine) {
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type rmat --scale 8 --edge-factor 4 --out " + graph),
            0);
  for (const char* engine : {"mlvc", "graphchi", "grafboost"}) {
    for (const char* app : {"bfs", "pagerank", "cdlp", "coloring", "mis",
                            "rw", "kcore", "wcc", "sssp"}) {
      // GraphChi cannot run weight-requiring apps (sssp) by design.
      if (std::string(engine) == "graphchi" && std::string(app) == "sssp") {
        continue;
      }
      EXPECT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                         " --app " + app + " --engine " + engine +
                         " --budget 1M --page-size 4K --supersteps 10"),
                0)
          << engine << "/" << app;
    }
  }
}

}  // namespace
}  // namespace mlvc
