// End-to-end integration test of the CLI tools: generate → inspect →
// convert → run, exercising the same binaries a user would.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ssd/storage.hpp"

namespace mlvc {
namespace {

int run_tool(const std::string& command) {
  return std::system((command + " > /dev/null 2>&1").c_str());
}

TEST(Tools, GenerateInspectRunPipeline) {
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();

  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type chain --vertices 500 --out " + graph),
            0);
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_INFO) + " --graph " + graph), 0);

  const std::string json = (dir.path() / "stats.json").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                     " --app bfs --source 0 --budget 1M --page-size 4K" +
                     " --supersteps 600 --json " + json),
            0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"engine\":\"MultiLogVC\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"app\":\"bfs\""), std::string::npos);
}

TEST(Tools, ConvertSnapToBinary) {
  ssd::TempDir dir;
  const std::string snap = (dir.path() / "edges.txt").string();
  {
    std::ofstream out(snap);
    out << "# tiny graph\n0 1\n1 2\n2 3\n";
  }
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_CONVERT) + " --in " + snap +
                     " --out " + graph),
            0);
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                     " --app wcc --budget 1M --page-size 4K"),
            0);
}

TEST(Tools, BadInvocationsFailCleanly) {
  // Unknown option, missing required arg, unknown app: nonzero exit, no
  // crash.
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_GEN) + " --bogus 1"), 0);
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_INFO)), 0);
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_RUN) +
                     " --graph /nonexistent --app bfs"),
            0);
}

TEST(Tools, CrashtestSingleCycleRecoversBfs) {
  // One victim/recover cycle: the child is killed at an injected write with
  // a torn trailing page, recovery resumes from the atomic checkpoint, and
  // the recovered vertex values must equal a clean run's.
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_CRASHTEST) +
                     " --profile torn-page --seed 11 --crash-after 25"),
            0);
}

TEST(Tools, EveryAppRunsOnEveryEngine) {
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type rmat --scale 8 --edge-factor 4 --out " + graph),
            0);
  for (const char* engine : {"mlvc", "graphchi", "grafboost"}) {
    for (const char* app : {"bfs", "pagerank", "cdlp", "coloring", "mis",
                            "rw", "kcore", "wcc", "sssp"}) {
      // GraphChi cannot run weight-requiring apps (sssp) by design.
      if (std::string(engine) == "graphchi" && std::string(app) == "sssp") {
        continue;
      }
      EXPECT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                         " --app " + app + " --engine " + engine +
                         " --budget 1M --page-size 4K --supersteps 10"),
                0)
          << engine << "/" << app;
    }
  }
}

}  // namespace
}  // namespace mlvc
