// End-to-end integration test of the CLI tools: generate → inspect →
// convert → run, exercising the same binaries a user would.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ssd/storage.hpp"

namespace mlvc {
namespace {

int run_tool(const std::string& command) {
  return std::system((command + " > /dev/null 2>&1").c_str());
}

TEST(Tools, GenerateInspectRunPipeline) {
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();

  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type chain --vertices 500 --out " + graph),
            0);
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_INFO) + " --graph " + graph), 0);

  const std::string json = (dir.path() / "stats.json").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                     " --app bfs --source 0 --budget 1M --page-size 4K" +
                     " --supersteps 600 --json " + json),
            0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"engine\":\"MultiLogVC\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"app\":\"bfs\""), std::string::npos);
}

TEST(Tools, ConvertSnapToBinary) {
  ssd::TempDir dir;
  const std::string snap = (dir.path() / "edges.txt").string();
  {
    std::ofstream out(snap);
    out << "# tiny graph\n0 1\n1 2\n2 3\n";
  }
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_CONVERT) + " --in " + snap +
                     " --out " + graph),
            0);
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                     " --app wcc --budget 1M --page-size 4K"),
            0);
}

TEST(Tools, BadInvocationsFailCleanly) {
  // Unknown option, missing required arg, unknown app: nonzero exit, no
  // crash.
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_GEN) + " --bogus 1"), 0);
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_INFO)), 0);
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_RUN) +
                     " --graph /nonexistent --app bfs"),
            0);
}

TEST(Tools, CrashtestSingleCycleRecoversBfs) {
  // One victim/recover cycle: the child is killed at an injected write with
  // a torn trailing page, recovery resumes from the atomic checkpoint, and
  // the recovered vertex values must equal a clean run's.
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_CRASHTEST) +
                     " --profile torn-page --seed 11 --crash-after 25"),
            0);
}

TEST(Tools, ServeMixedWorkloadVerifies) {
  // Daemon smoke test: many concurrent mixed queries over one shared graph,
  // with the deterministic ones re-run serially and hash-compared.
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type rmat --scale 9 --edge-factor 6 --out " + graph),
            0);
  const std::string log = (dir.path() / "serve.log").string();
  ASSERT_EQ(std::system((std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                         " --random 40 --concurrency 8 --verify 1" +
                         " --budget 4M --pool 64M --cache 256K" +
                         " --page-size 4K > " + log + " 2>&1")
                            .c_str()),
            0);
  std::ifstream in(log);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("(0 failed"), std::string::npos) << buf.str();
  EXPECT_NE(buf.str().find("0 mismatches"), std::string::npos) << buf.str();
}

TEST(Tools, ServeScriptModeAndBadSpecs) {
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type chain --vertices 300 --out " + graph),
            0);
  const std::string script = (dir.path() / "queries.txt").string();
  {
    std::ofstream out(script);
    out << "# mixed hand-written workload\n"
        << "bfs 0\nbfs 123\nwcc\npagerank\nrw 7\n";
  }
  EXPECT_EQ(run_tool(std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                     " --script " + script +
                     " --concurrency 4 --verify 1 --budget 4M --page-size 4K"),
            0);
  // Unknown app name and out-of-range source must fail cleanly, not crash.
  {
    std::ofstream out(script);
    out << "zork 1\n";
  }
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                     " --script " + script),
            0);
  {
    std::ofstream out(script);
    out << "bfs 99999999\n";
  }
  EXPECT_NE(run_tool(std::string(MLVC_TOOL_SERVE) + " --graph " + graph +
                     " --script " + script),
            0);
}

TEST(Tools, EveryAppRunsOnEveryEngine) {
  ssd::TempDir dir;
  const std::string graph = (dir.path() / "g.mlvc").string();
  ASSERT_EQ(run_tool(std::string(MLVC_TOOL_GEN) +
                     " --type rmat --scale 8 --edge-factor 4 --out " + graph),
            0);
  for (const char* engine : {"mlvc", "graphchi", "grafboost"}) {
    for (const char* app : {"bfs", "pagerank", "cdlp", "coloring", "mis",
                            "rw", "kcore", "wcc", "sssp"}) {
      // GraphChi cannot run weight-requiring apps (sssp) by design.
      if (std::string(engine) == "graphchi" && std::string(app) == "sssp") {
        continue;
      }
      EXPECT_EQ(run_tool(std::string(MLVC_TOOL_RUN) + " --graph " + graph +
                         " --app " + app + " --engine " + engine +
                         " --budget 1M --page-size 4K --supersteps 10"),
                0)
          << engine << "/" << app;
    }
  }
}

}  // namespace
}  // namespace mlvc
