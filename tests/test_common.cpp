// Unit tests for the common substrate: bitsets, RNG, thread pool, memory
// budget, formatting, parallel helpers.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/bitset.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/memory_budget.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace mlvc {
namespace {

// ---- DynamicBitset ---------------------------------------------------------

TEST(DynamicBitset, SetTestClear) {
  DynamicBitset b(100);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.set(63, false);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, OutOfRangeThrows) {
  DynamicBitset b(10);
  EXPECT_THROW(b.test(10), Error);
  EXPECT_THROW(b.set(10), Error);
}

TEST(DynamicBitset, SetAllRespectsSize) {
  DynamicBitset b(70);  // not a multiple of 64
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
}

TEST(DynamicBitset, ForEachSetAscending) {
  DynamicBitset b(200);
  const std::vector<std::size_t> expected = {3, 64, 65, 127, 128, 199};
  for (auto i : expected) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitset, ForEachSetInRange) {
  DynamicBitset b(256);
  for (std::size_t i = 0; i < 256; i += 3) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set_in_range(10, 70, [&](std::size_t i) { seen.push_back(i); });
  for (std::size_t i : seen) {
    EXPECT_GE(i, 10u);
    EXPECT_LT(i, 70u);
    EXPECT_EQ(i % 3, 0u);
  }
  EXPECT_EQ(seen.size(), (69 - 12) / 3 + 1u);
}

TEST(DynamicBitset, ForEachSetInRangeEdgeCases) {
  DynamicBitset b(128);
  b.set(0);
  b.set(127);
  std::size_t calls = 0;
  b.for_each_set_in_range(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  b.for_each_set_in_range(0, 128, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 2u);
  b.for_each_set_in_range(127, 128, [&](std::size_t i) { EXPECT_EQ(i, 127u); });
}

TEST(DynamicBitset, OrAssign) {
  DynamicBitset a(100), b(100);
  a.set(1);
  b.set(2);
  a |= b;
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(2));
}

// ---- AtomicBitset ----------------------------------------------------------

TEST(AtomicBitset, FirstSetterWins) {
  AtomicBitset b(64);
  EXPECT_TRUE(b.set(7));
  EXPECT_FALSE(b.set(7));
  EXPECT_TRUE(b.test(7));
  EXPECT_EQ(b.count(), 1u);
}

TEST(AtomicBitset, ConcurrentSetsAllLand) {
  AtomicBitset b(10000);
  parallel_for(0, 10000, [&](int i) { b.set(static_cast<std::size_t>(i)); });
  EXPECT_EQ(b.count(), 10000u);
}

TEST(AtomicBitset, SnapshotMatches) {
  AtomicBitset b(130);
  b.set(0);
  b.set(129);
  const DynamicBitset s = b.snapshot();
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(129));
  EXPECT_EQ(s.count(), 2u);
}

// ---- SplitMix64 ------------------------------------------------------------

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, NextBelowRoughlyUniform) {
  SplitMix64 rng(3);
  std::vector<int> buckets(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++buckets[rng.next_below(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, kN / 10, kN / 100);  // within 10% of expectation
  }
}

TEST(StreamFor, IndependentStreams) {
  // Streams for different (vertex, superstep) pairs must differ.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t v = 0; v < 100; ++v) {
    for (std::uint64_t s = 0; s < 4; ++s) {
      firsts.insert(stream_for(1, v, s).next());
    }
  }
  EXPECT_EQ(firsts.size(), 400u);
}

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, WaitIdleDrains) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

// ---- MemoryBudget ----------------------------------------------------------

TEST(MemoryBudget, ChargeAndRelease) {
  MemoryBudget budget("test", 1000);
  budget.charge(600);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(budget.available(), 400u);
  budget.release(600);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudget, OverchargeThrows) {
  MemoryBudget budget("test", 100);
  budget.charge(80);
  EXPECT_THROW(budget.charge(30), BudgetError);
  EXPECT_EQ(budget.used(), 80u);  // failed charge rolled back
}

TEST(BudgetCharge, RaiiReleases) {
  MemoryBudget budget("test", 100);
  {
    BudgetCharge charge(budget, 60);
    EXPECT_EQ(budget.used(), 60u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(BudgetCharge, MoveTransfersOwnership) {
  MemoryBudget budget("test", 100);
  BudgetCharge a(budget, 50);
  BudgetCharge b = std::move(a);
  EXPECT_EQ(budget.used(), 50u);
  b.reset();
  EXPECT_EQ(budget.used(), 0u);
}

// ---- format helpers --------------------------------------------------------

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3u << 20), "3.00 MiB");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

// ---- parallel helpers ------------------------------------------------------

TEST(Parallel, ForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(std::size_t{0}, std::size_t{1000},
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, SortMatchesStdSort) {
  SplitMix64 rng(5);
  std::vector<std::uint64_t> v(100000);
  for (auto& x : v) x = rng.next();
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

// ---- MLVC_CHECK ------------------------------------------------------------

TEST(Check, ThrowsWithMessage) {
  try {
    MLVC_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  double acc = 0;
  {
    ScopedAccumulator scope(acc);
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1;
  }
  EXPECT_GE(acc, 0.0);
  EXPECT_GE(t.elapsed_seconds(), acc * 0.5);
}

}  // namespace
}  // namespace mlvc
