// Unit tests of each application's vertex program against a mock context —
// validating per-vertex semantics without any engine in the loop.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/coloring.hpp"
#include "apps/mis.hpp"
#include "apps/pagerank.hpp"
#include "apps/random_walk.hpp"
#include "tests/mock_context.hpp"

namespace mlvc {
namespace {

using testing::MockContext;

template <typename Message>
core::MessageRange<Message> msgs(const std::vector<Message>& v) {
  return core::MessageRange<Message>::from_array(v);
}

// ---- BFS -------------------------------------------------------------------

TEST(BfsApp, SourceSeedsAtSuperstepZero) {
  apps::Bfs app{.source = 5};
  EXPECT_TRUE(app.initially_active(5));
  EXPECT_FALSE(app.initially_active(4));
  MockContext<apps::Bfs> ctx(5, 0, apps::Bfs::kUnreached, {1, 2});
  app.process(ctx, {});
  EXPECT_EQ(ctx.value(), 0u);
  ASSERT_EQ(ctx.sent().size(), 2u);
  EXPECT_EQ(ctx.sent()[0].second, 1u);
  EXPECT_TRUE(ctx.deactivated());
}

TEST(BfsApp, TakesMinimumIncomingDistance) {
  apps::Bfs app{.source = 0};
  MockContext<apps::Bfs> ctx(7, 3, apps::Bfs::kUnreached, {9});
  app.process(ctx, msgs<std::uint32_t>({5, 3, 8}));
  EXPECT_EQ(ctx.value(), 3u);
  ASSERT_EQ(ctx.sent().size(), 1u);
  EXPECT_EQ(ctx.sent()[0].second, 4u);
}

TEST(BfsApp, IgnoresWorseDistance) {
  apps::Bfs app{.source = 0};
  MockContext<apps::Bfs> ctx(7, 3, /*value=*/2, {9});
  app.process(ctx, msgs<std::uint32_t>({5}));
  EXPECT_EQ(ctx.value(), 2u);
  EXPECT_TRUE(ctx.sent().empty());
}

TEST(BfsApp, CombineIsMin) {
  apps::Bfs app;
  EXPECT_EQ(app.combine(3, 7), 3u);
  EXPECT_EQ(app.combine(9, 2), 2u);
}

// ---- PageRank ---------------------------------------------------------------

TEST(PageRankApp, SeedsInitialRankMass) {
  apps::PageRank app;
  MockContext<apps::PageRank> ctx(1, 0, 1.0f, {2, 3});
  app.process(ctx, {});
  ASSERT_EQ(ctx.sent().size(), 2u);
  EXPECT_FLOAT_EQ(ctx.sent()[0].second, 0.85f / 2);
}

TEST(PageRankApp, AccumulatesDeltaAndGates) {
  apps::PageRank app;
  app.threshold = 0.4f;
  MockContext<apps::PageRank> ctx(1, 2, 1.0f, {2});
  app.process(ctx, msgs<float>({0.3f, 0.2f}));  // delta 0.5 > 0.4
  EXPECT_FLOAT_EQ(ctx.value(), 1.5f);
  ASSERT_EQ(ctx.sent().size(), 1u);
  EXPECT_FLOAT_EQ(ctx.sent()[0].second, 0.85f * 0.5f);

  MockContext<apps::PageRank> quiet(1, 2, 1.0f, {2});
  app.process(quiet, msgs<float>({0.1f}));  // below threshold
  EXPECT_FLOAT_EQ(quiet.value(), 1.1f);     // still accumulated
  EXPECT_TRUE(quiet.sent().empty());        // but not propagated
}

TEST(PageRankApp, SinkVertexSendsNothing) {
  apps::PageRank app;
  MockContext<apps::PageRank> ctx(1, 1, 1.0f, {});
  app.process(ctx, msgs<float>({1.0f}));
  EXPECT_TRUE(ctx.sent().empty());
}

// ---- CDLP -------------------------------------------------------------------

TEST(CdlpApp, AnnouncesOwnLabelFirst) {
  apps::Cdlp app;
  MockContext<apps::Cdlp> ctx(4, 0, 4, {1, 2});
  app.process(ctx, {});
  ASSERT_EQ(ctx.sent().size(), 2u);
  EXPECT_EQ(ctx.sent()[0].second, 4u);
}

TEST(CdlpApp, AdoptsMostFrequentLabel) {
  apps::Cdlp app;
  MockContext<apps::Cdlp> ctx(4, 1, 4, {1});
  app.process(ctx, msgs<VertexId>({7, 7, 9}));
  EXPECT_EQ(ctx.value(), 7u);
  ASSERT_EQ(ctx.sent().size(), 1u);  // change announced
}

TEST(CdlpApp, TieBreaksToSmallestLabel) {
  apps::Cdlp app;
  MockContext<apps::Cdlp> ctx(4, 1, 4, {1});
  app.process(ctx, msgs<VertexId>({9, 7, 9, 7}));
  EXPECT_EQ(ctx.value(), 7u);
}

TEST(CdlpApp, NoChangeNoAnnouncement) {
  apps::Cdlp app;
  MockContext<apps::Cdlp> ctx(4, 1, 7, {1});
  app.process(ctx, msgs<VertexId>({7, 7}));
  EXPECT_TRUE(ctx.sent().empty());
}

// ---- graph coloring ----------------------------------------------------------

TEST(ColoringApp, RecolorsOnHigherPriorityConflict) {
  apps::GraphColoring app;
  using Msg = apps::GraphColoring::Message;
  MockContext<apps::GraphColoring> ctx(10, 1, 0, {3, 5});
  app.process(ctx, msgs<Msg>({{3, 0}}));  // neighbor 3 (higher prio) has 0 too
  EXPECT_NE(ctx.value(), 0u);
  EXPECT_EQ(ctx.sent().size(), 2u);  // new color announced
}

TEST(ColoringApp, ReAnnouncesAgainstLowerPriorityConflict) {
  apps::GraphColoring app;
  using Msg = apps::GraphColoring::Message;
  MockContext<apps::GraphColoring> ctx(3, 1, 0, {10});
  app.process(ctx, msgs<Msg>({{10, 0}}));  // lower-priority neighbor collides
  EXPECT_EQ(ctx.value(), 0u);              // keeps its color...
  ASSERT_EQ(ctx.sent().size(), 1u);        // ...but re-announces it
  EXPECT_EQ(ctx.sent()[0].second.color, 0u);
}

TEST(ColoringApp, QuietWhenNoConflict) {
  apps::GraphColoring app;
  using Msg = apps::GraphColoring::Message;
  MockContext<apps::GraphColoring> ctx(10, 1, 2, {3});
  app.process(ctx, msgs<Msg>({{3, 1}}));
  EXPECT_EQ(ctx.value(), 2u);
  EXPECT_TRUE(ctx.sent().empty());
}

TEST(ColoringApp, NewColorAvoidsAnnouncedHigherColors) {
  apps::GraphColoring app;
  using Msg = apps::GraphColoring::Message;
  // All colors 0..2 taken by higher-priority announcers; degree 3 allows
  // colors {0..3}; only 3 remains.
  MockContext<apps::GraphColoring> ctx(10, 1, 0, {1, 2, 3});
  app.process(ctx, msgs<Msg>({{1, 0}, {2, 1}, {3, 2}}));
  EXPECT_EQ(ctx.value(), 3u);
}

// ---- MIS ----------------------------------------------------------------------

TEST(MisApp, LonelyVertexJoinsInResolution) {
  apps::Mis app;
  MockContext<apps::Mis> sel(1, 0, apps::Mis::kUndecided, {});
  app.process(sel, {});
  EXPECT_FALSE(sel.deactivated());  // stays up for resolution
  MockContext<apps::Mis> res(1, 1, apps::Mis::kUndecided, {});
  app.process(res, {});
  EXPECT_EQ(res.value(), apps::Mis::kInMis);
}

TEST(MisApp, LoserStaysUndecided) {
  apps::Mis app;
  using Msg = apps::Mis::Message;
  const float own = app.priority_of(5, 0);
  MockContext<apps::Mis> ctx(5, 1, apps::Mis::kUndecided, {9});
  app.process(ctx, msgs<Msg>({{own + 0.5f, 9, Msg::kPriority}}));
  EXPECT_EQ(ctx.value(), apps::Mis::kUndecided);
  EXPECT_FALSE(ctx.deactivated());
}

TEST(MisApp, InMisAnnouncementExcludesNeighbor) {
  apps::Mis app;
  using Msg = apps::Mis::Message;
  MockContext<apps::Mis> ctx(5, 2, apps::Mis::kUndecided, {9});
  app.process(ctx, msgs<Msg>({{0.0f, 9, Msg::kInMisAnnounce}}));
  EXPECT_EQ(ctx.value(), apps::Mis::kNotInMis);
  EXPECT_TRUE(ctx.deactivated());
}

TEST(MisApp, DecidedVertexStaysSilent) {
  apps::Mis app;
  using Msg = apps::Mis::Message;
  MockContext<apps::Mis> ctx(5, 2, apps::Mis::kInMis, {9});
  app.process(ctx, msgs<Msg>({{0.9f, 9, Msg::kPriority}}));
  EXPECT_TRUE(ctx.sent().empty());
  EXPECT_TRUE(ctx.deactivated());
}

TEST(MisApp, PriorityIsDeterministicPerRound) {
  apps::Mis app;
  EXPECT_EQ(app.priority_of(3, 1), app.priority_of(3, 1));
  EXPECT_NE(app.priority_of(3, 1), app.priority_of(3, 2));
  EXPECT_NE(app.priority_of(3, 1), app.priority_of(4, 1));
}

// ---- random walk ----------------------------------------------------------------

TEST(RandomWalkApp, SourcesSpawnConfiguredWalks) {
  apps::RandomWalk app;
  app.source_stride = 10;
  app.walks_per_source = 3;
  EXPECT_TRUE(app.initially_active(0));
  EXPECT_TRUE(app.initially_active(10));
  EXPECT_FALSE(app.initially_active(5));
  MockContext<apps::RandomWalk> ctx(10, 0, 0, {1, 2, 3});
  app.process(ctx, {});
  EXPECT_EQ(ctx.sent().size(), 3u);  // 3 walkers dispatched
  EXPECT_EQ(ctx.value(), 3u);        // 3 visits recorded at the source
  for (const auto& [dst, m] : ctx.sent()) {
    EXPECT_EQ(m.hops_left, app.max_steps - 1);
  }
}

TEST(RandomWalkApp, WalkerForwardsUntilExhausted) {
  apps::RandomWalk app;
  using Msg = apps::RandomWalk::Message;
  MockContext<apps::RandomWalk> ctx(42, 3, 0, {7});
  app.process(ctx, msgs<Msg>({{2, 0}}));
  EXPECT_EQ(ctx.value(), 1u);
  ASSERT_EQ(ctx.sent().size(), 1u);
  EXPECT_EQ(ctx.sent()[0].first, 7u);
  EXPECT_EQ(ctx.sent()[0].second.hops_left, 1u);

  MockContext<apps::RandomWalk> done(42, 3, 0, {7});
  app.process(done, msgs<Msg>({{0, 0}}));  // budget exhausted
  EXPECT_EQ(done.value(), 1u);
  EXPECT_TRUE(done.sent().empty());
}

TEST(RandomWalkApp, DeadEndSwallowsWalker) {
  apps::RandomWalk app;
  using Msg = apps::RandomWalk::Message;
  MockContext<apps::RandomWalk> ctx(42, 3, 5, {});
  app.process(ctx, msgs<Msg>({{9, 0}}));
  EXPECT_EQ(ctx.value(), 6u);  // visit counted
  EXPECT_TRUE(ctx.sent().empty());
}

}  // namespace
}  // namespace mlvc
