// Broad cross-engine property sweep: for random graph topologies and seeds,
// all three engines must agree with each other and with the reference
// implementations on every application that admits exact comparison.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/coloring.hpp"
#include "apps/mis.hpp"
#include "core/engine.hpp"
#include "grafboost/engine.hpp"
#include "graph/generators.hpp"
#include "graphchi/engine.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

enum class Topology { kRmat, kErdosRenyi, kGrid, kStar, kChain };

struct SweepCase {
  Topology topology;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* topo = "";
  switch (info.param.topology) {
    case Topology::kRmat: topo = "rmat"; break;
    case Topology::kErdosRenyi: topo = "er"; break;
    case Topology::kGrid: topo = "grid"; break;
    case Topology::kStar: topo = "star"; break;
    case Topology::kChain: topo = "chain"; break;
  }
  return std::string(topo) + "_seed" + std::to_string(info.param.seed);
}

graph::CsrGraph build(const SweepCase& c) {
  switch (c.topology) {
    case Topology::kRmat: {
      graph::RmatParams p;
      p.scale = 8;
      p.edge_factor = 5;
      p.seed = c.seed;
      return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
    }
    case Topology::kErdosRenyi:
      return graph::CsrGraph::from_edge_list(
          graph::generate_erdos_renyi(300, 1500, c.seed));
    case Topology::kGrid:
      return graph::CsrGraph::from_edge_list(graph::generate_grid(20, 15));
    case Topology::kStar:
      return graph::CsrGraph::from_edge_list(graph::generate_star(200));
    case Topology::kChain:
      return graph::CsrGraph::from_edge_list(graph::generate_chain(150));
  }
  throw Error("unreachable");
}

template <core::VertexApp App>
std::vector<typename App::Value> run_mlvc(const graph::CsrGraph& csr, App app,
                                          Superstep max_steps) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  auto opts = testing_options();
  opts.memory_budget_bytes = 256_KiB;  // stress multi-interval paths
  opts.max_supersteps = max_steps;
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts));
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  engine.run();
  return engine.values();
}

template <core::VertexApp App>
std::vector<typename App::Value> run_graphchi(const graph::CsrGraph& csr,
                                              App app, Superstep max_steps) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  graphchi::GraphChiOptions opts;
  opts.memory_budget_bytes = 256_KiB;
  opts.max_supersteps = max_steps;
  graphchi::GraphChiEngine<App> engine(storage, csr, app, opts);
  engine.run();
  return engine.values();
}

template <core::VertexApp App>
std::vector<typename App::Value> run_grafboost(const graph::CsrGraph& csr,
                                               App app, Superstep max_steps) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  auto opts = testing_options();
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts));
  grafboost::GraFBoostOptions gopts;
  gopts.memory_budget_bytes = 256_KiB;
  gopts.max_supersteps = max_steps;
  gopts.use_combine = App::kHasCombine;
  grafboost::GraFBoostEngine<App> engine(stored, app, gopts);
  engine.run();
  return engine.values();
}

class EngineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineSweep, BfsAllEnginesMatchReference) {
  const auto csr = build(GetParam());
  apps::Bfs app{.source = 0};
  const auto expected = reference::bfs_distances(csr, 0);
  const auto a = run_mlvc(csr, app, 300);
  const auto b = run_graphchi(csr, app, 300);
  const auto c = run_grafboost(csr, app, 300);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(a[v], expected[v]) << "mlvc v=" << v;
    ASSERT_EQ(b[v], expected[v]) << "graphchi v=" << v;
    ASSERT_EQ(c[v], expected[v]) << "grafboost v=" << v;
  }
}

TEST_P(EngineSweep, CdlpAllEnginesMatchReference) {
  const auto csr = build(GetParam());
  apps::Cdlp app;
  const auto expected = reference::cdlp_labels(csr, 15);
  const auto a = run_mlvc(csr, app, 15);
  const auto b = run_graphchi(csr, app, 15);
  const auto c = run_grafboost(csr, app, 15);
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);
  EXPECT_EQ(c, expected);
}

TEST_P(EngineSweep, ColoringValidEverywhereAndIdentical) {
  const auto csr = build(GetParam());
  apps::GraphColoring app;
  const auto a = run_mlvc(csr, app, 400);
  const auto b = run_graphchi(csr, app, 400);
  EXPECT_TRUE(reference::coloring_is_valid(csr, a)) << "mlvc";
  EXPECT_TRUE(reference::coloring_is_valid(csr, b)) << "graphchi";
  EXPECT_EQ(a, b);
}

TEST_P(EngineSweep, MisValidEverywhereAndIdentical) {
  const auto csr = build(GetParam());
  apps::Mis app;
  const auto a = run_mlvc(csr, app, 400);
  const auto b = run_graphchi(csr, app, 400);
  EXPECT_TRUE(reference::mis_is_valid(csr, a)) << "mlvc";
  EXPECT_TRUE(reference::mis_is_valid(csr, b)) << "graphchi";
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, EngineSweep,
    ::testing::Values(SweepCase{Topology::kRmat, 101},
                      SweepCase{Topology::kRmat, 202},
                      SweepCase{Topology::kRmat, 303},
                      SweepCase{Topology::kErdosRenyi, 404},
                      SweepCase{Topology::kErdosRenyi, 505},
                      SweepCase{Topology::kGrid, 1},
                      SweepCase{Topology::kStar, 1},
                      SweepCase{Topology::kChain, 1}),
    case_name);

}  // namespace
}  // namespace mlvc
