// io_uring backend unit tests: the capability probe, backend selection and
// transparent fallback, round-trip correctness against the thread-pool
// substrate, SQE coalescing and submit-batch statistics, and concurrent
// batch isolation (each run_batch leases its own ring).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ssd/io_backend.hpp"
#include "ssd/storage.hpp"
#include "ssd/uring_io.hpp"

namespace mlvc {
namespace {

/// Pin one environment variable for a test, restoring the outer value on
/// exit (CI re-runs this suite with MLVC_IO_BACKEND set).
class ScopedEnv {
 public:
  ScopedEnv(const char* var, const char* value) : var_(var) {
    const char* old = std::getenv(var);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(var, value, 1);
    } else {
      ::unsetenv(var);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(var_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(var_.c_str());
    }
  }

 private:
  std::string var_;
  std::string old_;
  bool had_;
};

TEST(IoBackendKind, ParseAcceptsAliasesAndRejectsJunk) {
  using ssd::IoBackendKind;
  for (const char* s : {"threadpool", "thread-pool", "pool"}) {
    const auto k = ssd::parse_io_backend(s);
    ASSERT_TRUE(k.has_value()) << s;
    EXPECT_EQ(*k, IoBackendKind::kThreadPool) << s;
  }
  for (const char* s : {"uring", "io_uring", "io-uring"}) {
    const auto k = ssd::parse_io_backend(s);
    ASSERT_TRUE(k.has_value()) << s;
    EXPECT_EQ(*k, IoBackendKind::kUring) << s;
  }
  EXPECT_FALSE(ssd::parse_io_backend("").has_value());
  EXPECT_FALSE(ssd::parse_io_backend("aio").has_value());
  EXPECT_EQ(ssd::to_string(IoBackendKind::kThreadPool),
            std::string_view("threadpool"));
  EXPECT_EQ(ssd::to_string(IoBackendKind::kUring), std::string_view("uring"));
}

TEST(UringProbe, IsCachedAndExplainsUnavailability) {
  const auto& a = ssd::UringIo::probe();
  const auto& b = ssd::UringIo::probe();
  EXPECT_EQ(&a, &b);  // one probe per process
  if (!a.available) {
    EXPECT_FALSE(a.reason.empty());
  }
}

TEST(IoBackendSelect, ThreadPoolAlwaysSucceeds) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  EXPECT_EQ(storage.set_io_backend(ssd::IoBackendKind::kThreadPool),
            ssd::IoBackendKind::kThreadPool);
  EXPECT_EQ(storage.io_backend(), ssd::IoBackendKind::kThreadPool);
  EXPECT_TRUE(storage.io_backend_fallback().empty());
}

TEST(IoBackendSelect, UringRequestFollowsProbe) {
  ScopedEnv strict("MLVC_IO_STRICT", nullptr);
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  const auto got = storage.set_io_backend(ssd::IoBackendKind::kUring, 16);
  if (ssd::UringIo::probe().available) {
    EXPECT_EQ(got, ssd::IoBackendKind::kUring);
    EXPECT_EQ(storage.io_backend(), ssd::IoBackendKind::kUring);
    EXPECT_TRUE(storage.io_backend_fallback().empty());
  } else {
    // Transparent fallback: the request lands on the thread pool with the
    // probe's reason recorded, and strict mode turns it into an error.
    EXPECT_EQ(got, ssd::IoBackendKind::kThreadPool);
    EXPECT_EQ(storage.io_backend(), ssd::IoBackendKind::kThreadPool);
    EXPECT_FALSE(storage.io_backend_fallback().empty());
    ScopedEnv env("MLVC_IO_STRICT", "1");
    EXPECT_THROW(storage.set_io_backend(ssd::IoBackendKind::kUring), Error);
  }
}

TEST(IoBackendSelect, EnvOverrideAppliesAtStorageConstruction) {
  {
    ScopedEnv env("MLVC_IO_BACKEND", "threadpool");
    ssd::TempDir dir;
    ssd::Storage storage(dir.path());
    EXPECT_EQ(storage.io_backend(), ssd::IoBackendKind::kThreadPool);
  }
  if (ssd::UringIo::probe().available) {
    ScopedEnv env("MLVC_IO_BACKEND", "uring");
    ScopedEnv strict("MLVC_IO_STRICT", nullptr);
    ssd::TempDir dir;
    ssd::Storage storage(dir.path());
    EXPECT_EQ(storage.io_backend(), ssd::IoBackendKind::kUring);
  }
  {
    ScopedEnv env("MLVC_IO_BACKEND", "bogus");
    ssd::TempDir dir;
    EXPECT_THROW(ssd::Storage storage(dir.path()), InvalidArgument);
  }
}

// ---- uring data-path tests (skip when the kernel refuses io_uring) --------

class UringBackend : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ssd::UringIo::probe().available) {
      GTEST_SKIP() << "io_uring unavailable: "
                   << ssd::UringIo::probe().reason;
    }
  }
};

std::vector<std::uint32_t> pattern_words(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> v(n);
  SplitMix64 rng(seed);
  for (auto& w : v) w = static_cast<std::uint32_t>(rng.next());
  return v;
}

TEST_F(UringBackend, RoundTripRecordsBatchStats) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  ASSERT_EQ(storage.set_io_backend(ssd::IoBackendKind::kUring, 32),
            ssd::IoBackendKind::kUring);
  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  const auto data = pattern_words(32 * 1024, 11);
  blob.append(data.data(), data.size() * 4);
  std::vector<std::uint32_t> back(data.size());
  blob.read(0, back.data(), back.size() * 4);
  EXPECT_EQ(back, data);

  const auto io = storage.stats().snapshot();
  EXPECT_GT(io.submit_batches, 0u);       // both ops went through the ring
  EXPECT_GE(io.max_inflight_depth, 1u);   // and the gauge saw them in flight
  EXPECT_EQ(io.io_giveup_count, 0u);
}

TEST_F(UringBackend, ReadMultiCoalescesAdjacentRuns) {
  // The inflight-depth bound below counts SQEs on ONE ring; a striped store
  // (CI re-runs tier-1 under MLVC_DEVICES=4) spreads the batch over
  // per-device rings and legitimately lowers it. Pin the single-file layout.
  ScopedEnv pin_devices("MLVC_DEVICES", nullptr);
  ScopedEnv pin_unit("MLVC_STRIPE_UNIT", nullptr);
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  ASSERT_EQ(storage.set_io_backend(ssd::IoBackendKind::kUring, 32),
            ssd::IoBackendKind::kUring);
  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  const auto data = pattern_words(64 * 1024, 23);  // 256 KiB
  blob.append(data.data(), data.size() * 4);

  // Eight adjacent 4 KiB spans (one contiguous run -> one vectored SQE)
  // plus two scattered spans. 8 ops folded into 1 leaves 7 coalesced.
  constexpr std::size_t kWords = 1024;
  std::vector<std::vector<std::uint32_t>> bufs(10,
                                               std::vector<std::uint32_t>(
                                                   kWords));
  std::vector<ssd::ReadOp> ops;
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < 8; ++i) starts.push_back(i * kWords);
  starts.push_back(20 * kWords);
  starts.push_back(40 * kWords);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    ops.push_back({starts[i] * 4, bufs[i].data(), kWords * 4});
  }
  const auto before = storage.stats().snapshot();
  blob.read_multi(ops);
  const auto delta = storage.stats().snapshot() - before;

  for (std::size_t i = 0; i < starts.size(); ++i) {
    ASSERT_TRUE(std::memcmp(bufs[i].data(), data.data() + starts[i],
                            kWords * 4) == 0)
        << "span " << i;
  }
  EXPECT_EQ(delta.sqe_coalesced_ops, 7u);
  EXPECT_GE(delta.max_inflight_depth, 3u);  // 1 vectored + 2 scattered SQEs
}

TEST_F(UringBackend, MatchesThreadPoolOnRandomScatteredReads) {
  const auto data = pattern_words(128 * 1024, 37);  // 512 KiB
  ssd::TempDir dir_tp, dir_ur;
  ssd::Storage tp(dir_tp.path()), ur(dir_ur.path());
  ASSERT_EQ(ur.set_io_backend(ssd::IoBackendKind::kUring, 64),
            ssd::IoBackendKind::kUring);
  ssd::Blob& blob_tp = tp.create_blob("t", ssd::IoCategory::kMisc);
  ssd::Blob& blob_ur = ur.create_blob("t", ssd::IoCategory::kMisc);
  blob_tp.append(data.data(), data.size() * 4);
  blob_ur.append(data.data(), data.size() * 4);

  SplitMix64 rng(91);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::size_t> starts;
    std::vector<std::size_t> lens;
    for (int i = 0; i < 100; ++i) {
      const std::size_t len = 16 + rng.next_below(2048);
      starts.push_back(rng.next_below(data.size() - len));
      lens.push_back(len);
    }
    // read_multi expects offset-sorted ops (loader batches arrive sorted).
    std::vector<std::size_t> order(starts.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return starts[a] < starts[b];
              });
    std::vector<std::vector<std::uint32_t>> a(starts.size()),
        b(starts.size());
    std::vector<ssd::ReadOp> ops_a, ops_b;
    for (const auto i : order) {
      a[i].resize(lens[i]);
      b[i].resize(lens[i]);
      ops_a.push_back({starts[i] * 4, a[i].data(), lens[i] * 4});
      ops_b.push_back({starts[i] * 4, b[i].data(), lens[i] * 4});
    }
    blob_tp.read_multi(ops_a);
    blob_ur.read_multi(ops_b);
    for (std::size_t i = 0; i < starts.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "round " << round << " op " << i;
      ASSERT_TRUE(std::memcmp(a[i].data(), data.data() + starts[i],
                              lens[i] * 4) == 0)
          << "round " << round << " op " << i;
    }
  }
}

TEST_F(UringBackend, ConcurrentBatchesLeaseSeparateRings) {
  // Multiple threads drive read_multi through one Storage at once; each
  // run_batch must lease its own ring (shared SQ/CQ indices would corrupt
  // completions). TSan runs this test too (tier-1 + sanitizer-scope label).
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  ASSERT_EQ(storage.set_io_backend(ssd::IoBackendKind::kUring, 8),
            ssd::IoBackendKind::kUring);
  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  const auto data = pattern_words(64 * 1024, 53);
  blob.append(data.data(), data.size() * 4);

  constexpr unsigned kThreads = 4;
  constexpr std::size_t kSlice = 64 * 1024 / kThreads;  // words per thread
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t base = t * kSlice;
      constexpr std::size_t kPieces = 4;
      std::vector<std::vector<std::uint32_t>> bufs(
          kPieces, std::vector<std::uint32_t>(kSlice / kPieces));
      for (int round = 0; round < 8; ++round) {
        std::vector<ssd::ReadOp> ops;
        for (std::size_t piece = 0; piece < kPieces; ++piece) {
          const std::size_t start = base + piece * bufs[piece].size();
          ops.push_back({start * 4, bufs[piece].data(),
                         bufs[piece].size() * 4});
        }
        blob.read_multi(ops);
        for (std::size_t piece = 0; piece < kPieces; ++piece) {
          const std::size_t start = base + piece * bufs[piece].size();
          if (std::memcmp(bufs[piece].data(), data.data() + start,
                          bufs[piece].size() * 4) != 0) {
            ++failures[t];
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace mlvc
