// End-to-end smoke tests: MultiLogVC engine running BFS on small graphs,
// cross-checked against an in-memory reference.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

TEST(EngineSmoke, BfsOnChain) {
  auto edges = graph::generate_chain(100);
  auto csr = graph::CsrGraph::from_edge_list(edges);

  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);

  core::EngineOptions opts = testing_options();
  opts.max_supersteps = 200;

  auto intervals = core::partition_for_app<apps::Bfs>(csr, opts);
  graph::StoredCsrGraph stored(storage, "g", csr, intervals);

  apps::Bfs app{.source = 0};
  core::MultiLogVCEngine<apps::Bfs> engine(stored, app, opts);
  auto stats = engine.run();

  const auto distances = engine.values();
  const auto expected = reference::bfs_distances(csr, 0);
  ASSERT_EQ(distances.size(), expected.size());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_EQ(distances[v], expected[v]) << "vertex " << v;
  }
  EXPECT_GT(stats.supersteps.size(), 90u);  // chain needs ~100 supersteps
}

TEST(EngineSmoke, BfsOnRmat) {
  graph::RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  params.seed = 5;
  auto edges = graph::generate_rmat(params);
  auto csr = graph::CsrGraph::from_edge_list(edges);

  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);

  core::EngineOptions opts = testing_options();
  opts.max_supersteps = 100;

  auto intervals = core::partition_for_app<apps::Bfs>(csr, opts);
  graph::StoredCsrGraph stored(storage, "g", csr, intervals);

  apps::Bfs app{.source = 1};
  core::MultiLogVCEngine<apps::Bfs> engine(stored, app, opts);
  engine.run();

  const auto distances = engine.values();
  const auto expected = reference::bfs_distances(csr, 1);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(distances[v], expected[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace mlvc
