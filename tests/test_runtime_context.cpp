// RuntimeContext / multi-tenant serving tests: the budget arbiter, the
// per-query IoStats sink, snapshot-isolated checkpoint publication, the
// shared admission-controlled page cache, and — the acceptance bar — N
// engines racing over one RuntimeContext producing results bit-identical to
// serial one-shot runs. Labeled sanitizer-scope: most of these are exactly
// the interleavings TSan should chew on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/bfs.hpp"
#include "common/memory_budget.hpp"
#include "core/engine.hpp"
#include "core/runtime_context.hpp"
#include "graph/generators.hpp"
#include "ssd/page_cache.hpp"
#include "ssd/storage.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

graph::CsrGraph ctx_graph(std::uint64_t seed = 17) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

core::RuntimeContextOptions ctx_testing_options() {
  core::RuntimeContextOptions o;
  o.device.page_size = 4_KiB;  // small pages → real out-of-core pressure
  o.shared_cache_bytes = 64_KiB;
  o.memory_pool_bytes = 64_MiB;
  return o;
}

// ---- BudgetArbiter ---------------------------------------------------------

TEST(BudgetArbiter, AccountingAndTryAcquire) {
  BudgetArbiter arb("t", 100);
  EXPECT_EQ(arb.total(), 100u);
  EXPECT_EQ(arb.used(), 0u);
  {
    BudgetLease a = arb.acquire(60);
    EXPECT_EQ(arb.used(), 60u);
    EXPECT_EQ(arb.available(), 40u);
    auto b = arb.try_acquire(50);
    EXPECT_FALSE(b.has_value());  // 60 + 50 > 100
    auto c = arb.try_acquire(40);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(arb.used(), 100u);
    c->reset();
    EXPECT_EQ(arb.used(), 60u);
  }
  EXPECT_EQ(arb.used(), 0u);  // lease released on scope exit
}

TEST(BudgetArbiter, OversizeRequestThrows) {
  BudgetArbiter arb("t", 100);
  EXPECT_THROW(arb.acquire(101), BudgetError);
  EXPECT_THROW(arb.try_acquire(101), BudgetError);
  EXPECT_EQ(arb.used(), 0u);
}

TEST(BudgetArbiter, BlockingAcquireWakesOnRelease) {
  BudgetArbiter arb("t", 100);
  BudgetLease big = arb.acquire(80);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    BudgetLease lease = arb.acquire(50);  // parks: 80 + 50 > 100
    admitted.store(true);
  });
  // Give the waiter time to park, then confirm it is actually parked.
  while (arb.waiters() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  big.reset();  // frees 80 → the 50 fits
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(arb.used(), 0u);
}

// ---- per-query IoStats sink ------------------------------------------------

TEST(IoStats, ScopedSinkMirrorsRecords) {
  ssd::IoStats global;
  ssd::IoStats query;
  global.record_read(ssd::IoCategory::kCsrColIdx, 2, 8192);
  {
    ssd::IoStats::ScopedSink scope(&query);
    global.record_read(ssd::IoCategory::kCsrColIdx, 3, 12288);
    global.record_cache_hit(5);
  }
  global.record_cache_hit(1);  // after the scope: not mirrored
  const auto g = global.snapshot();
  const auto q = query.snapshot();
  EXPECT_EQ(g.total_pages_read(), 5u);
  EXPECT_EQ(q.total_pages_read(), 3u);  // only the in-scope read
  EXPECT_EQ(g.cache_hit_pages, 6u);
  EXPECT_EQ(q.cache_hit_pages, 5u);
}

TEST(IoStats, SinkSelfMirrorIsHarmless) {
  ssd::IoStats stats;
  ssd::IoStats::ScopedSink scope(&stats);  // sink == recorder
  stats.record_write(ssd::IoCategory::kMessageLog, 4, 16384);
  EXPECT_EQ(stats.snapshot().total_pages_written(), 4u);  // not doubled
}

// ---- SnapshotTable ---------------------------------------------------------

TEST(SnapshotTable, PublishPinResolveGc) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  core::SnapshotTable table(storage);
  EXPECT_EQ(table.epoch(), 0u);
  EXPECT_EQ(table.generation("ckpt/a"), 0u);

  const auto stage = [&](const char* tmp, const char* payload) {
    ssd::Blob& b = storage.create_blob(tmp, ssd::IoCategory::kMisc);
    b.append(payload, std::strlen(payload));
  };
  stage("tmp1", "one");
  EXPECT_EQ(table.publish("ckpt/a", "tmp1"), 1u);
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_TRUE(storage.has_blob("ckpt/a@g1"));

  core::SnapshotTable::Ref pinned = table.pin();
  EXPECT_TRUE(pinned.contains("ckpt/a"));
  EXPECT_EQ(pinned.resolve("ckpt/a"), "ckpt/a@g1");

  // Publish generation 2 while g1 is pinned: both blobs stay live and the
  // pinned reader still resolves to g1.
  stage("tmp2", "two");
  EXPECT_EQ(table.publish("ckpt/a", "tmp2"), 2u);
  EXPECT_EQ(table.live_generations("ckpt/a"), 2u);
  EXPECT_TRUE(storage.has_blob("ckpt/a@g1"));
  EXPECT_TRUE(storage.has_blob("ckpt/a@g2"));
  EXPECT_EQ(pinned.resolve("ckpt/a"), "ckpt/a@g1");
  {
    char buf[3];
    storage.open_blob(pinned.resolve("ckpt/a")).read(0, buf, 3);
    EXPECT_EQ(std::string(buf, 3), "one");
  }
  core::SnapshotTable::Ref latest = table.pin();
  EXPECT_EQ(latest.resolve("ckpt/a"), "ckpt/a@g2");

  // Unpin g1 → the superseded generation is collected; g2 survives.
  pinned.reset();
  EXPECT_EQ(table.live_generations("ckpt/a"), 1u);
  EXPECT_FALSE(storage.has_blob("ckpt/a@g1"));
  EXPECT_TRUE(storage.has_blob("ckpt/a@g2"));
}

TEST(SnapshotTable, UnknownNameThrows) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  core::SnapshotTable table(storage);
  core::SnapshotTable::Ref ref = table.pin();
  EXPECT_FALSE(ref.contains("nope"));
  EXPECT_THROW(ref.resolve("nope"), InvalidArgument);
}

TEST(SnapshotTable, ConcurrentPublishAndPin) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  core::SnapshotTable table(storage);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::thread publisher([&] {
    for (int i = 0; i < 50; ++i) {
      const std::string tmp = "tmp" + std::to_string(i);
      ssd::Blob& b = storage.create_blob(tmp, ssd::IoCategory::kMisc);
      b.append("xy", 2);
      table.publish("ckpt/hot", tmp);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    char buf[2];
    while (!stop.load()) {
      core::SnapshotTable::Ref ref = table.pin();
      if (!ref.contains("ckpt/hot")) continue;  // nothing published yet
      try {
        // The pin must keep this generation's blob alive for the whole read.
        storage.open_blob(ref.resolve("ckpt/hot")).read(0, buf, 2);
      } catch (...) {
        failures.fetch_add(1);
      }
    }
  });
  publisher.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(table.generation("ckpt/hot"), 50u);
  EXPECT_EQ(table.live_generations("ckpt/hot"), 1u);  // all pins dropped
}

// ---- shared io-backend probe -----------------------------------------------

TEST(SharedProbe, ConcurrentSetIoBackendIsStable) {
  // Two storages and many threads all racing set_io_backend must resolve to
  // the one process-wide probe — same answer, same (normalized) reason.
  const auto& probe = ssd::shared_io_backend_probe();
  ssd::TempDir da, db;
  ssd::Storage a(da.path()), b(db.path());
  std::vector<std::thread> threads;
  std::vector<ssd::IoBackendKind> got(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      ssd::Storage& s = (t % 2 != 0) ? a : b;
      got[static_cast<std::size_t>(t)] =
          s.set_io_backend(ssd::IoBackendKind::kUring);
    });
  }
  for (auto& t : threads) t.join();
  const auto expected = probe.uring_available ? ssd::IoBackendKind::kUring
                                              : ssd::IoBackendKind::kThreadPool;
  for (const auto k : got) EXPECT_EQ(k, expected);
  if (!probe.uring_available) {
    EXPECT_FALSE(probe.fallback_reason.empty());
    EXPECT_EQ(a.io_backend_fallback(), probe.fallback_reason);
    EXPECT_EQ(b.io_backend_fallback(), probe.fallback_reason);
  }
  // The probe result is a process-wide singleton.
  EXPECT_EQ(&probe, &ssd::shared_io_backend_probe());
}

// ---- shared PageCache admission --------------------------------------------

TEST(SharedCache, PerQuerySplitAndAdmission) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  const std::size_t page = storage.page_size();
  ssd::Blob& blob = storage.create_blob("data", ssd::IoCategory::kCsrColIdx);
  std::vector<char> pattern(page * 8);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<char>(i * 31 + 7);
  }
  blob.append(pattern.data(), pattern.size());

  ssd::PageCache cache(storage, page * 8);
  auto quota2 = cache.register_query(page * 2);   // may keep 2 pages
  auto open_q = cache.register_query(0);          // unlimited
  ASSERT_NE(quota2.slot(), nullptr);
  EXPECT_EQ(quota2.slot()->quota_pages(), 2u);

  std::vector<char> buf(page);
  const auto read_page = [&](std::size_t p) {
    cache.read(blob, p * page, buf.data(), page);
    EXPECT_EQ(std::memcmp(buf.data(), pattern.data() + p * page, page), 0);
  };

  {
    ssd::PageCache::ScopedQuery scope(quota2.slot());
    read_page(0);
    read_page(1);  // fills the quota
    read_page(2);  // at quota → served around the cache
    read_page(3);
    EXPECT_EQ(quota2.slot()->misses(), 2u);
    EXPECT_EQ(quota2.slot()->bypasses(), 2u);
    EXPECT_EQ(quota2.slot()->resident_pages(), 2u);
    read_page(0);  // resident → hit, no quota effect
    EXPECT_EQ(quota2.slot()->hits(), 1u);
  }
  {
    // The unlimited query hits the page the quota'd query already cached
    // and can fill the rest of the cache; its split is its own.
    ssd::PageCache::ScopedQuery scope(open_q.slot());
    read_page(0);
    EXPECT_EQ(open_q.slot()->hits(), 1u);
    read_page(2);
    read_page(3);
    EXPECT_EQ(open_q.slot()->misses(), 2u);
    EXPECT_EQ(open_q.slot()->bypasses(), 0u);
  }
  EXPECT_LE(cache.bytes_high_water(), cache.capacity_bytes());
  const auto snap = storage.stats().snapshot();
  EXPECT_EQ(snap.cache_bypass_pages, 2u);
  EXPECT_EQ(snap.cache_hit_pages, 2u);

  // Unregistering releases the quota'd query's frame ownership; the pages
  // stay cached for everyone else.
  quota2.reset();
  ssd::PageCache::ScopedQuery scope(open_q.slot());
  read_page(1);
  EXPECT_EQ(open_q.slot()->hits(), 2u);
}

TEST(SharedCache, EvictionCountersAndBudget) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  const std::size_t page = storage.page_size();
  ssd::Blob& blob = storage.create_blob("data", ssd::IoCategory::kCsrColIdx);
  std::vector<char> zeros(page * 6, 3);
  blob.append(zeros.data(), zeros.size());

  ssd::PageCache cache(storage, page * 2);  // room for 2 pages only
  std::vector<char> buf(page);
  for (std::size_t p = 0; p < 6; ++p) cache.read(blob, p * page, buf.data(), page);
  EXPECT_EQ(cache.misses(), 6u);
  EXPECT_EQ(cache.evictions(), 4u);  // 6 fills into 2 frames
  EXPECT_EQ(cache.bytes_high_water(), cache.capacity_bytes());
  const auto snap = storage.stats().snapshot();
  EXPECT_EQ(snap.cache_evictions, 4u);
  EXPECT_EQ(snap.cache_bytes_high_water, cache.capacity_bytes());
}

// ---- the acceptance bar: concurrent engines == serial one-shots ------------

TEST(RuntimeContext, ConcurrentEnginesMatchSerialOneShots) {
  const auto csr = ctx_graph();
  const std::vector<VertexId> sources = {0, 7, 33, 100, 211, 350, 401, 499};

  // Serial ground truth: one-shot engines, each with its own substrate.
  std::vector<std::vector<apps::Bfs::Value>> expected;
  for (const VertexId src : sources) {
    ssd::TempDir dir;
    ssd::DeviceConfig dev;
    dev.page_size = 4_KiB;
    ssd::Storage storage(dir.path(), dev);
    auto opts = testing_options();
    graph::StoredCsrGraph stored(
        storage, "g", csr, core::partition_for_app<apps::Bfs>(csr, opts), {});
    core::MultiLogVCEngine<apps::Bfs> engine(stored, apps::Bfs{.source = src},
                                             opts);
    engine.run();
    expected.push_back(engine.values());
  }

  // Concurrent runs: one RuntimeContext, one stored graph, one shared
  // cache; every query races the others.
  ssd::TempDir dir;
  core::RuntimeContext ctx(dir.path(), ctx_testing_options());
  auto opts = testing_options();
  graph::StoredCsrGraph stored(
      ctx.storage(), "g", csr, core::partition_for_app<apps::Bfs>(csr, opts),
      {});
  ctx.adopt_graph(stored);

  std::vector<std::vector<apps::Bfs::Value>> got(sources.size());
  std::vector<core::RunStats> run_stats(sources.size());
  std::vector<std::thread> threads;
  std::atomic<std::size_t> thread_failures{0};
  for (std::size_t i = 0; i < sources.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        core::MultiLogVCEngine<apps::Bfs> engine(
            ctx, stored, apps::Bfs{.source = sources[i]}, opts);
        run_stats[i] = engine.run();
        got[i] = engine.values();
        ctx.merge_run(run_stats[i]);
      } catch (...) {
        thread_failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(thread_failures.load(), 0u);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "source " << sources[i];
  }

  // Per-query attribution: distinct ids, each query saw its own (nonzero)
  // log traffic even while all shared one Storage.
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    ids.push_back(run_stats[i].query_id);
    EXPECT_GT(run_stats[i].total_pages(), 0u) << "source " << sources[i];
    EXPECT_EQ(run_stats[i].io_backend, ctx.io_backend_name());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());

  const auto agg = ctx.aggregates();
  EXPECT_EQ(agg.queries_completed, sources.size());
  EXPECT_GT(agg.supersteps, 0u);
  EXPECT_GT(agg.pages_read, 0u);

  // The shared cache never outgrew its configured budget.
  EXPECT_LE(ctx.shared_cache()->bytes_high_water(),
            ctx.shared_cache()->capacity_bytes());
}

// ---- snapshot isolation over checkpoints -----------------------------------

TEST(RuntimeContext, CheckpointSnapshotIsolationAcrossPublish) {
  const auto csr = ctx_graph(23);
  ssd::TempDir dir;
  core::RuntimeContext ctx(dir.path(), ctx_testing_options());
  auto opts = testing_options();
  opts.max_supersteps = 12;
  graph::StoredCsrGraph stored(
      ctx.storage(), "g", csr, core::partition_for_app<apps::Bfs>(csr, opts),
      {});
  ctx.adopt_graph(stored);

  // Query 1 runs three supersteps and checkpoints.
  core::MultiLogVCEngine<apps::Bfs> e1(ctx, stored, apps::Bfs{.source = 0},
                                       opts);
  int steps = 0;
  e1.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 3; });
  e1.save_checkpoint("iso");
  EXPECT_EQ(ctx.snapshots().generation("ckpt/iso"), 1u);

  // A reader pins the table (as load_checkpoint does), then the engine
  // publishes generation 2 over the same name.
  core::SnapshotTable::Ref pinned = ctx.snapshots().pin();
  e1.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 5; });
  e1.save_checkpoint("iso");
  EXPECT_EQ(ctx.snapshots().generation("ckpt/iso"), 2u);
  EXPECT_EQ(pinned.resolve("ckpt/iso"), "ckpt/iso@g1");
  EXPECT_TRUE(ctx.storage().has_blob("ckpt/iso@g1"));  // pin kept it alive
  pinned.reset();
  EXPECT_FALSE(ctx.storage().has_blob("ckpt/iso@g1"));  // collected

  // A second query restores the latest checkpoint and finishes; it must
  // land exactly where query 1 lands from the same point.
  e1.run();
  core::MultiLogVCEngine<apps::Bfs> e2(ctx, stored, apps::Bfs{.source = 0},
                                       opts);
  e2.load_checkpoint("iso");
  e2.run();
  EXPECT_EQ(e2.values(), e1.values());
}

}  // namespace
}  // namespace mlvc
