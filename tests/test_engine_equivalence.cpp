// Cross-engine equivalence: every application must compute identical results
// on MultiLogVC and on the GraphChi baseline (both strict BSP), and match
// the in-memory reference implementations.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/coloring.hpp"
#include "apps/mis.hpp"
#include "apps/pagerank.hpp"
#include "apps/random_walk.hpp"
#include "apps/wcc.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graphchi/engine.hpp"
#include "ssd/uring_io.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  explicit Env(std::size_t page = 4_KiB)
      : storage(dir.path(), [page] {
          ssd::DeviceConfig d;
          d.page_size = page;
          return d;
        }()) {}
};

template <core::VertexApp App>
std::vector<typename App::Value> run_mlvc(const graph::CsrGraph& csr, App app,
                                          core::EngineOptions opts) {
  Env env;
  auto intervals = core::partition_for_app<App>(csr, opts);
  graph::StoredCsrGraph stored(env.storage, "g", csr, intervals);
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  engine.run();
  return engine.values();
}

template <core::VertexApp App>
std::vector<typename App::Value> run_graphchi(const graph::CsrGraph& csr,
                                              App app,
                                              graphchi::GraphChiOptions opts) {
  Env env;
  graphchi::GraphChiEngine<App> engine(env.storage, csr, app, opts);
  engine.run();
  return engine.values();
}

graph::CsrGraph test_graph(unsigned scale = 9, std::uint64_t seed = 11) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 6;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

core::EngineOptions mlvc_opts(Superstep max_steps = 60) {
  auto o = testing_options();
  o.max_supersteps = max_steps;
  return o;
}

graphchi::GraphChiOptions gc_opts(Superstep max_steps = 60) {
  graphchi::GraphChiOptions o;
  o.memory_budget_bytes = 2_MiB;
  o.max_supersteps = max_steps;
  return o;
}

TEST(EngineEquivalence, Bfs) {
  const auto csr = test_graph();
  apps::Bfs app{.source = 3};
  const auto a = run_mlvc(csr, app, mlvc_opts());
  const auto b = run_graphchi(csr, app, gc_opts());
  const auto expected = reference::bfs_distances(csr, 3);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(a[v], expected[v]) << "mlvc vertex " << v;
    ASSERT_EQ(b[v], expected[v]) << "graphchi vertex " << v;
  }
}

TEST(EngineEquivalence, PageRank) {
  const auto csr = test_graph();
  apps::PageRank app;
  app.threshold = 0.1f;
  const auto a = run_mlvc(csr, app, mlvc_opts(15));
  const auto b = run_graphchi(csr, app, gc_opts(15));
  const auto expected = reference::delta_pagerank(csr, 0.85, 0.1, 15);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_NEAR(a[v], expected[v], 1e-2) << "mlvc vertex " << v;
    ASSERT_NEAR(b[v], expected[v], 1e-2) << "graphchi vertex " << v;
  }
}

TEST(EngineEquivalence, Cdlp) {
  const auto csr = test_graph();
  apps::Cdlp app;
  const auto a = run_mlvc(csr, app, mlvc_opts(15));
  const auto b = run_graphchi(csr, app, gc_opts(15));
  const auto expected = reference::cdlp_labels(csr, 15);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(a[v], expected[v]) << "mlvc vertex " << v;
    ASSERT_EQ(b[v], expected[v]) << "graphchi vertex " << v;
  }
}

TEST(EngineEquivalence, GraphColoringValidAndIdentical) {
  const auto csr = test_graph(8);
  apps::GraphColoring app;
  const auto a = run_mlvc(csr, app, mlvc_opts(300));
  const auto b = run_graphchi(csr, app, gc_opts(300));
  EXPECT_TRUE(reference::coloring_is_valid(csr, a));
  EXPECT_TRUE(reference::coloring_is_valid(csr, b));
  EXPECT_EQ(a, b);
}

TEST(EngineEquivalence, MisValidAndIdentical) {
  const auto csr = test_graph(8, 21);
  apps::Mis app;
  const auto a = run_mlvc(csr, app, mlvc_opts(200));
  const auto b = run_graphchi(csr, app, gc_opts(200));
  EXPECT_TRUE(reference::mis_is_valid(csr, a));
  EXPECT_TRUE(reference::mis_is_valid(csr, b));
  EXPECT_EQ(a, b);
}

// ---- pipelined vs serial matrix -------------------------------------------
//
// The pipeline must be a pure scheduling change: for every app, running with
// enable_pipeline (io_threads 1 and 4) must produce the same vertex values
// as the serial path. Integer-valued apps compare bit-exact. PageRank
// combines floats whose per-destination order is unspecified even in serial
// mode (sort_records leaves equal-dst order open), so it compares within a
// rounding tolerance instead.

template <core::VertexApp App, typename Cmp>
void pipeline_matrix(const graph::CsrGraph& csr, App app,
                     core::EngineOptions base, Cmp&& compare) {
  base.enable_pipeline = false;
  const auto serial = run_mlvc(csr, app, base);
  for (unsigned io_threads : {1u, 4u}) {
    auto opts = base;
    opts.enable_pipeline = true;
    opts.io_threads = io_threads;
    const auto piped = run_mlvc(csr, app, opts);
    ASSERT_EQ(serial.size(), piped.size());
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      compare(serial[v], piped[v], v, io_threads);
    }
  }
}

const auto exact_match = [](const auto& a, const auto& b, VertexId v,
                            unsigned io_threads) {
  ASSERT_EQ(a, b) << "vertex " << v << ", io_threads " << io_threads;
};

TEST(PipelineEquivalence, Bfs) {
  pipeline_matrix(test_graph(), apps::Bfs{.source = 3}, mlvc_opts(),
                  exact_match);
}

TEST(PipelineEquivalence, BfsAsynchronousModel) {
  auto opts = mlvc_opts();
  opts.model = core::ComputationModel::kAsynchronous;
  pipeline_matrix(test_graph(), apps::Bfs{.source = 3}, opts, exact_match);
}

TEST(PipelineEquivalence, PageRank) {
  apps::PageRank app;
  app.threshold = 0.1f;
  pipeline_matrix(test_graph(), app, mlvc_opts(15),
                  [](float a, float b, VertexId v, unsigned io_threads) {
                    ASSERT_NEAR(a, b, 1e-4)
                        << "vertex " << v << ", io_threads " << io_threads;
                  });
}

TEST(PipelineEquivalence, Cdlp) {
  pipeline_matrix(test_graph(), apps::Cdlp{}, mlvc_opts(15), exact_match);
}

TEST(PipelineEquivalence, GraphColoring) {
  pipeline_matrix(test_graph(8), apps::GraphColoring{}, mlvc_opts(300),
                  exact_match);
}

TEST(PipelineEquivalence, Mis) {
  pipeline_matrix(test_graph(8, 21), apps::Mis{}, mlvc_opts(200),
                  exact_match);
}

TEST(PipelineEquivalence, RandomWalk) {
  apps::RandomWalk app;
  app.source_stride = 64;
  app.max_steps = 10;
  pipeline_matrix(test_graph(9, 31), app, mlvc_opts(20), exact_match);
}

// ---- io-backend equivalence matrix ----------------------------------------
//
// The io_uring backend must be a pure I/O-substrate change: for every app,
// every vertex value computed with ssd::IoBackendKind::kUring must equal the
// thread-pool result, with the pipeline both off and on (the pipeline is
// where read_multi batches — and so SQE coalescing — actually happen).
// Skipped cleanly when the kernel or sandbox refuses io_uring; CI's strict
// uring re-run catches a probe that falls back when it should not.

template <core::VertexApp App, typename Cmp>
void backend_matrix(const graph::CsrGraph& csr, App app,
                    core::EngineOptions base, Cmp&& compare) {
  if (!ssd::UringIo::probe().available) {
    GTEST_SKIP() << "io_uring unavailable: " << ssd::UringIo::probe().reason;
  }
  for (bool pipeline : {false, true}) {
    auto tp = base;
    tp.enable_pipeline = pipeline;
    tp.io_backend = ssd::IoBackendKind::kThreadPool;
    const auto a = run_mlvc(csr, app, tp);
    auto ur = tp;
    ur.io_backend = ssd::IoBackendKind::kUring;
    ur.io_queue_depth = 32;
    const auto b = run_mlvc(csr, app, ur);
    ASSERT_EQ(a.size(), b.size());
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      compare(a[v], b[v], v, pipeline);
    }
  }
}

const auto backend_exact = [](const auto& a, const auto& b, VertexId v,
                              bool pipeline) {
  ASSERT_EQ(a, b) << "vertex " << v << ", pipeline " << pipeline;
};

TEST(BackendEquivalence, Bfs) {
  backend_matrix(test_graph(), apps::Bfs{.source = 3}, mlvc_opts(),
                 backend_exact);
}

TEST(BackendEquivalence, PageRank) {
  apps::PageRank app;
  app.threshold = 0.1f;
  backend_matrix(test_graph(), app, mlvc_opts(15),
                 [](float a, float b, VertexId v, bool pipeline) {
                   ASSERT_NEAR(a, b, 1e-4)
                       << "vertex " << v << ", pipeline " << pipeline;
                 });
}

TEST(BackendEquivalence, Wcc) {
  backend_matrix(test_graph(), apps::Wcc{}, mlvc_opts(60), backend_exact);
}

TEST(EngineEquivalence, RandomWalkVisitBudget) {
  const auto csr = test_graph(9, 31);
  apps::RandomWalk app;
  app.source_stride = 64;
  app.max_steps = 10;
  const auto a = run_mlvc(csr, app, mlvc_opts(20));
  const auto b = run_graphchi(csr, app, gc_opts(20));

  const std::uint64_t walkers =
      std::uint64_t{(csr.num_vertices() + 63) / 64} * app.walks_per_source;
  const auto total = [](const std::vector<std::uint32_t>& visits) {
    std::uint64_t t = 0;
    for (auto v : visits) t += v;
    return t;
  };
  // Every walker visits between 1 and max_steps + 1 vertices.
  EXPECT_GE(total(a), walkers);
  EXPECT_LE(total(a), walkers * (app.max_steps + 1));
  EXPECT_GE(total(b), walkers);
  EXPECT_LE(total(b), walkers * (app.max_steps + 1));
}

}  // namespace
}  // namespace mlvc
