// Geometry property sweeps: the multi-log and the full engine must be
// correct for any combination of page size, record size, and eviction batch
// — the places where byte-level bookkeeping bugs hide.
#include <gtest/gtest.h>

#include <map>

#include "apps/bfs.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graphchi/engine.hpp"
#include "multilog/multilog_store.hpp"
#include "multilog/record.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

struct Geometry {
  std::size_t page_size;
  std::size_t record_size;
  std::size_t evict_batch;
};

std::string geometry_name(const ::testing::TestParamInfo<Geometry>& info) {
  return "page" + std::to_string(info.param.page_size) + "_rec" +
         std::to_string(info.param.record_size) + "_batch" +
         std::to_string(info.param.evict_batch);
}

class MultiLogGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(MultiLogGeometry, MultisetPreservedExactly) {
  const auto [page_size, record_size, evict_batch] = GetParam();
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = page_size;
  ssd::Storage storage(dir.path(), dev);

  const auto iv = graph::VertexIntervals::uniform(977, 61);  // odd widths
  multilog::MultiLogConfig cfg;
  cfg.record_size = record_size;
  cfg.evict_batch_pages = evict_batch;
  multilog::MultiLogStore store(storage, "t", iv, cfg);

  // Records: 4-byte dst header + arbitrary payload bytes derived from a
  // counter, so any corruption (offset slip, page-boundary bug) is caught.
  SplitMix64 rng(GetParam().page_size * 31 + record_size);
  constexpr std::uint32_t kN = 20011;  // prime, exercises odd tails
  std::map<VertexId, std::vector<std::uint32_t>> expected;
  std::vector<std::byte> record(record_size);
  for (std::uint32_t k = 0; k < kN; ++k) {
    const auto dst = static_cast<VertexId>(rng.next_below(977));
    std::memcpy(record.data(), &dst, 4);
    for (std::size_t b = 4; b < record_size; ++b) {
      record[b] = static_cast<std::byte>((k + b) & 0xFF);
    }
    store.append(dst, record.data());
    expected[dst].push_back(k);
  }
  store.swap_generations();

  std::uint64_t seen = 0;
  for (IntervalId i = 0; i < iv.count(); ++i) {
    std::vector<std::byte> bytes;
    store.load_interval(i, bytes);
    ASSERT_EQ(bytes.size() % record_size, 0u);
    std::map<VertexId, std::size_t> cursor;
    for (std::size_t off = 0; off < bytes.size(); off += record_size) {
      VertexId dst;
      std::memcpy(&dst, bytes.data() + off, 4);
      ASSERT_EQ(iv.interval_of(dst), i);
      // Per-destination append order is preserved: validate payload bytes
      // against the k-th record sent to this dst.
      const std::size_t idx = cursor[dst]++;
      ASSERT_LT(idx, expected[dst].size());
      const std::uint32_t k = expected[dst][idx];
      for (std::size_t b = 4; b < record_size; ++b) {
        ASSERT_EQ(bytes[off + b], static_cast<std::byte>((k + b) & 0xFF))
            << "payload corruption at dst=" << dst << " byte=" << b;
      }
      ++seen;
    }
  }
  EXPECT_EQ(seen, kN);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MultiLogGeometry,
    ::testing::Values(Geometry{512, 8, 1}, Geometry{512, 12, 4},
                      Geometry{1024, 8, 16}, Geometry{4096, 8, 1},
                      Geometry{4096, 20, 16}, Geometry{4096, 6, 8},
                      Geometry{16384, 16, 16}, Geometry{1024, 100, 2}),
    geometry_name);

// ---- engine under odd page sizes --------------------------------------------

class EnginePageSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EnginePageSweep, BfsCorrectAtAnyPageSize) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 5;
  p.seed = 47;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(p));

  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = GetParam();
  ssd::Storage storage(dir.path(), dev);
  auto opts = testing_options();
  // The multi-log buffer slice (A% of the budget) must hold at least one
  // page, so the budget scales with the page size under test.
  opts.memory_budget_bytes = std::max<std::size_t>(256_KiB, GetParam() * 32);
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<apps::Bfs>(csr, opts));
  apps::Bfs app{.source = 0};
  core::MultiLogVCEngine<apps::Bfs> engine(stored, app, opts);
  engine.run();
  const auto got = engine.values();
  const auto expected = reference::bfs_distances(csr, 0);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(got[v], expected[v]) << "page size " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, EnginePageSweep,
                         ::testing::Values(512, 1024, 2048, 4096, 16384,
                                           65536));

// ---- failure injection -------------------------------------------------------

struct NeedsWeights {
  using Value = float;
  using Message = float;
  static constexpr bool kHasCombine = false;
  static constexpr bool kNeedsWeights = true;
  const char* name() const { return "needs_weights"; }
  Value initial_value(VertexId) const { return 0; }
  bool initially_active(VertexId) const { return true; }
  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>&) const {
    ctx.deactivate();
  }
};

TEST(FailureInjection, EngineRejectsWeightAppOnUnweightedGraph) {
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_chain(10));
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  auto opts = testing_options();
  graph::StoredCsrGraph stored(storage, "g", csr,
                               graph::VertexIntervals::uniform(10, 5),
                               {.with_weights = false});
  EXPECT_THROW(
      (core::MultiLogVCEngine<NeedsWeights>(stored, NeedsWeights{}, opts)),
      Error);
}

TEST(FailureInjection, StorageReadBeyondGraphThrows) {
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_chain(10));
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  graph::StoredCsrGraph stored(storage, "g", csr,
                               graph::VertexIntervals::uniform(10, 5));
  std::vector<VertexId> buf(100);
  EXPECT_THROW(stored.read_adjacency(0, 0, 100, buf), Error);
  std::vector<EdgeIndex> rp(100);
  EXPECT_THROW(stored.read_local_row_ptrs(0, 0, 100, rp), Error);
}

TEST(FailureInjection, IntervalMismatchCaught) {
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_chain(10));
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  // Boundaries that do not cover the graph must be rejected.
  EXPECT_THROW(graph::StoredCsrGraph(storage, "g", csr,
                                     graph::VertexIntervals::uniform(8, 4)),
               Error);
}

struct BadSender {
  using Value = std::uint32_t;
  using Message = std::uint32_t;
  static constexpr bool kHasCombine = false;
  static constexpr bool kNeedsWeights = false;
  const char* name() const { return "bad_sender"; }
  Value initial_value(VertexId) const { return 0; }
  bool initially_active(VertexId v) const { return v == 0; }
  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>&) const {
    if (ctx.id() == 0) ctx.send(9, 1);  // 9 is not a neighbor of 0
    ctx.deactivate();
  }
};

TEST(FailureInjection, GraphChiSendToNonNeighborThrows) {
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_chain(10));
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  graphchi::GraphChiOptions opts;
  opts.memory_budget_bytes = 256_KiB;
  graphchi::GraphChiEngine<BadSender> engine(storage, csr, BadSender{}, opts);
  EXPECT_THROW(engine.run(), Error);
}

}  // namespace
}  // namespace mlvc
