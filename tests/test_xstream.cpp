// Tests for the X-Stream edge-centric baseline: scatter-gather correctness
// against references and the expected I/O behaviour (full edge stream every
// superstep).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "tests/reference.hpp"
#include "xstream/apps.hpp"
#include "xstream/engine.hpp"

namespace mlvc::xstream {
namespace {

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

graph::CsrGraph sample(std::uint64_t seed = 91) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 5;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

TEST(XStream, BfsMatchesReference) {
  Env env;
  const auto csr = sample();
  XsBfs app{.source = 0};
  XStreamEngine<XsBfs> engine(env.storage, csr, app,
                              {.memory_budget_bytes = 256_KiB,
                               .max_supersteps = 100});
  engine.run();
  const auto states = engine.states();
  const auto expected = reference::bfs_distances(csr, 0);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(states[v].dist, expected[v]) << "vertex " << v;
  }
}

TEST(XStream, WccMatchesReference) {
  Env env;
  const auto csr = sample(92);
  XStreamEngine<XsWcc> engine(env.storage, csr, XsWcc{},
                              {.memory_budget_bytes = 256_KiB,
                               .max_supersteps = 100});
  engine.run();
  const auto states = engine.states();
  const auto expected = reference::wcc_labels(csr);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(states[v].label, expected[v]) << "vertex " << v;
  }
}

TEST(XStream, PageRankMatchesReferenceShiftedByOne) {
  Env env;
  const auto csr = sample(93);
  XsPageRank app;
  app.threshold = 0.1f;
  XStreamEngine<XsPageRank> engine(env.storage, csr, app,
                                   {.memory_budget_bytes = 256_KiB,
                                    .max_supersteps = 14});
  engine.run();
  const auto states = engine.states();
  // X-Stream applies round-r deltas at superstep r; the vertex-centric
  // reference consumes them at r+1 (see XsPageRank doc comment).
  const auto expected = reference::delta_pagerank(csr, 0.85, 0.1, 15);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_NEAR(states[v].rank, expected[v], 1e-2) << "vertex " << v;
  }
}

TEST(XStream, StreamsAllEdgesEverySuperstep) {
  Env env;
  const auto csr = sample(94);
  XsBfs app{.source = 0};
  XStreamEngine<XsBfs> engine(env.storage, csr, app,
                              {.memory_budget_bytes = 256_KiB,
                               .max_supersteps = 100});
  const auto stats = engine.run();
  ASSERT_GE(stats.supersteps.size(), 3u);
  // The edge stream (kShard category) is re-read in full each superstep —
  // page counts per superstep stay constant even as activity collapses.
  const auto first = stats.supersteps[1].io;
  const auto later = stats.supersteps[stats.supersteps.size() - 2].io;
  EXPECT_EQ(first[ssd::IoCategory::kShard].pages_read,
            later[ssd::IoCategory::kShard].pages_read);
}

TEST(XStream, ConvergenceStopsEarly) {
  Env env;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_chain(20));
  XsBfs app{.source = 0};
  XStreamEngine<XsBfs> engine(env.storage, csr, app,
                              {.memory_budget_bytes = 256_KiB,
                               .max_supersteps = 500});
  const auto stats = engine.run();
  EXPECT_LT(stats.supersteps.size(), 30u);  // ~19 hops + terminal superstep
}

TEST(XStream, ManyPartitionsStillCorrect) {
  Env env;
  const auto csr = sample(95);
  XsBfs app{.source = 3};
  // Budget so small that states split into many streaming partitions.
  XStreamEngine<XsBfs> engine(env.storage, csr, app,
                              {.memory_budget_bytes = 8_KiB,
                               .max_supersteps = 100});
  engine.run();
  const auto states = engine.states();
  const auto expected = reference::bfs_distances(csr, 3);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(states[v].dist, expected[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace mlvc::xstream
