// Remaining behavioural coverage: asynchronous-mode semantics for
// monotone and non-monotone apps, GraFBoost merge fan-in sweeps, and
// direct unit tests of the X-Stream scatter-gather programs.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/wcc.hpp"
#include "core/engine.hpp"
#include "grafboost/engine.hpp"
#include "graph/generators.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"
#include "xstream/apps.hpp"

namespace mlvc {
namespace {

graph::CsrGraph misc_graph(std::uint64_t seed = 99) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 5;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

// ---- asynchronous mode on monotone apps --------------------------------------

TEST(AsyncMode, WccConvergesToSameLabels) {
  // WCC is monotone (labels only decrease), so async delivery can change
  // the trajectory but never the fixpoint.
  const auto csr = misc_graph();
  apps::Wcc app;
  const auto expected = reference::wcc_labels(csr);

  for (const auto model : {core::ComputationModel::kSynchronous,
                           core::ComputationModel::kAsynchronous}) {
    ssd::TempDir dir;
    ssd::DeviceConfig dev;
    dev.page_size = 4_KiB;
    ssd::Storage storage(dir.path(), dev);
    auto opts = testing_options();
    opts.model = model;
    opts.max_supersteps = 100;
    graph::StoredCsrGraph stored(
        storage, "g", csr, core::partition_for_app<apps::Wcc>(csr, opts));
    core::MultiLogVCEngine<apps::Wcc> engine(stored, app, opts);
    engine.run();
    EXPECT_EQ(engine.values(), expected)
        << (model == core::ComputationModel::kAsynchronous ? "async" : "sync");
  }
}

TEST(AsyncMode, MessagesConsumedEarlier) {
  // In async mode, messages to later intervals arrive within the same
  // superstep, so superstep 0 already consumes messages.
  // Big enough that the 256 KiB budget yields multiple intervals.
  graph::RmatParams gp;
  gp.scale = 11;
  gp.edge_factor = 8;
  gp.seed = 98;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(gp));
  apps::Wcc app;
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  auto opts = testing_options();
  opts.memory_budget_bytes = 256_KiB;  // several intervals
  opts.model = core::ComputationModel::kAsynchronous;
  opts.enable_interval_fusion = false;
  graph::StoredCsrGraph stored(
      storage, "g", csr, core::partition_for_app<apps::Wcc>(csr, opts));
  core::MultiLogVCEngine<apps::Wcc> engine(stored, app, opts);
  const auto stats = engine.run();
  ASSERT_GE(stored.intervals().count(), 2u);
  EXPECT_GT(stats.supersteps[0].messages_consumed, 0u)
      << "async mode should deliver same-superstep messages";
}

// ---- GraFBoost fan-in sweep ---------------------------------------------------

class FanInSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FanInSweep, BfsCorrectAtAnyFanIn) {
  const auto csr = misc_graph(97);
  apps::Bfs app{.source = 0};
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  auto popts = testing_options();
  graph::StoredCsrGraph stored(
      storage, "g", csr, core::partition_for_app<apps::Bfs>(csr, popts));
  grafboost::GraFBoostOptions opts;
  opts.memory_budget_bytes = 128_KiB;  // small runs, lots of them
  opts.max_supersteps = 60;
  opts.fan_in = GetParam();
  grafboost::GraFBoostEngine<apps::Bfs> engine(stored, app, opts);
  engine.run();
  const auto got = engine.values();
  const auto expected = reference::bfs_distances(csr, 0);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(got[v], expected[v]) << "fan_in " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(FanIns, FanInSweep, ::testing::Values(2, 3, 8, 64));

TEST(GraFBoost, SmallerFanInCostsMorePasses) {
  // A big enough log that the run count exceeds the small fan-in: CDLP on
  // a scale-11 graph emits ~E messages in the first supersteps.
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 96;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
  apps::Cdlp app;
  const auto run = [&](std::size_t fan_in) {
    ssd::TempDir dir;
    ssd::DeviceConfig dev;
    dev.page_size = 4_KiB;
    ssd::Storage storage(dir.path(), dev);
    auto popts = testing_options();
    graph::StoredCsrGraph stored(
        storage, "g", csr, core::partition_for_app<apps::Cdlp>(csr, popts));
    grafboost::GraFBoostOptions opts;
    opts.memory_budget_bytes = 64_KiB;
    opts.max_supersteps = 5;
    opts.fan_in = fan_in;
    grafboost::GraFBoostEngine<apps::Cdlp> engine(stored, app, opts);
    const auto stats = engine.run();
    std::uint64_t sort_pages = 0;
    for (const auto& s : stats.supersteps) {
      sort_pages += s.io[ssd::IoCategory::kSortRun].pages_read +
                    s.io[ssd::IoCategory::kSortRun].pages_written;
    }
    return sort_pages;
  };
  // fan-in 2 forces log(runs) merge passes; fan-in 64 merges in one pass.
  EXPECT_GT(run(2), run(64));
}

// ---- X-Stream app units --------------------------------------------------------

TEST(XsApps, BfsStateMachine) {
  xstream::XsBfs app{.source = 3};
  auto src = app.init(3, 5);
  auto other = app.init(7, 2);
  EXPECT_TRUE(app.should_scatter(src));
  EXPECT_FALSE(app.should_scatter(other));
  EXPECT_EQ(app.scatter(src, 3, 7, 1.0f), 1u);

  app.gather(other, 1);
  EXPECT_TRUE(app.apply(other, 0));  // improved -> scatters next superstep
  EXPECT_EQ(other.dist, 1u);
  app.gather(other, 4);              // worse candidate
  EXPECT_FALSE(app.apply(other, 1)); // no improvement -> silent
  EXPECT_EQ(other.dist, 1u);
}

TEST(XsApps, PageRankGatesOnThreshold) {
  xstream::XsPageRank app;
  app.threshold = 0.4f;
  auto s = app.init(0, 4);
  EXPECT_TRUE(app.should_scatter(s));  // initial pending = 1.0 > 0.4
  EXPECT_FLOAT_EQ(app.scatter(s, 0, 1, 1.0f), 0.85f / 4);
  app.gather(s, 0.2f);
  app.gather(s, 0.1f);
  EXPECT_FALSE(app.apply(s, 0));  // 0.3 below threshold
  EXPECT_FLOAT_EQ(s.rank, 1.3f);
  auto sink = app.init(1, 0);
  EXPECT_FALSE(app.should_scatter(sink));  // degree 0 never scatters
}

TEST(XsApps, WccMonotone) {
  xstream::XsWcc app;
  auto s = app.init(9, 3);
  EXPECT_TRUE(app.should_scatter(s));  // initial announcement
  app.gather(s, 4);
  app.gather(s, 2);
  EXPECT_TRUE(app.apply(s, 0));
  EXPECT_EQ(s.label, 2u);
  app.gather(s, 7);                // larger label: ignored
  EXPECT_FALSE(app.apply(s, 1));
  EXPECT_EQ(s.label, 2u);
}

}  // namespace
}  // namespace mlvc
