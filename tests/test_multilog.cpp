// Tests for the multi-log machinery: the per-interval message store (top
// pages, batched eviction, generations, async drain), sort-and-group,
// the active set, the history predictor, and the page-utilization tracker.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "multilog/active_set.hpp"
#include "multilog/multilog_store.hpp"
#include "multilog/page_util.hpp"
#include "multilog/predictor.hpp"
#include "multilog/record.hpp"
#include "multilog/sort_group.hpp"
#include "ssd/async_io.hpp"

namespace mlvc::multilog {
namespace {

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

using TestRecord = Record<std::uint32_t>;

std::vector<TestRecord> load_records(MultiLogStore& store, IntervalId i) {
  std::vector<std::byte> bytes;
  store.load_interval(i, bytes);
  return decode_records<std::uint32_t>(bytes);
}

// ---- MultiLogStore ---------------------------------------------------------

TEST(MultiLogStore, MessagesLandInDestinationIntervalLog) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(100, 10);
  MultiLogStore store(env.storage, "t", iv, {.record_size = 8});

  append_record<std::uint32_t>(store, 5, 100);    // interval 0
  append_record<std::uint32_t>(store, 15, 200);   // interval 1
  append_record<std::uint32_t>(store, 17, 300);   // interval 1
  append_record<std::uint32_t>(store, 99, 400);   // interval 9

  EXPECT_EQ(store.produced_count(0), 1u);
  EXPECT_EQ(store.produced_count(1), 2u);
  EXPECT_EQ(store.produced_count(9), 1u);
  EXPECT_EQ(store.produced_count(5), 0u);

  store.swap_generations();
  EXPECT_EQ(store.current_count(1), 2u);
  EXPECT_EQ(store.total_current_count(), 4u);

  const auto recs = load_records(store, 1);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].dst, 15u);
  EXPECT_EQ(recs[0].payload, 200u);
  EXPECT_EQ(recs[1].dst, 17u);
  EXPECT_EQ(recs[1].payload, 300u);
}

TEST(MultiLogStore, GenerationsAreIsolated) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(10, 5);
  MultiLogStore store(env.storage, "t", iv, {.record_size = 8});
  append_record<std::uint32_t>(store, 1, 1);
  store.swap_generations();
  // New sends go to the produce generation, not the consumable one.
  append_record<std::uint32_t>(store, 1, 2);
  EXPECT_EQ(store.current_count(0), 1u);
  const auto recs = load_records(store, 0);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].payload, 1u);
  store.swap_generations();
  const auto next = load_records(store, 0);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].payload, 2u);
}

TEST(MultiLogStore, SpillsToStorageAndReloads) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(10, 5);
  MultiLogStore store(env.storage, "t", iv, {.record_size = 8});
  // Far more than one 4 KiB top page per interval.
  constexpr std::uint32_t kN = 50000;
  for (std::uint32_t k = 0; k < kN; ++k) {
    append_record<std::uint32_t>(store, k % 10, k);
  }
  store.swap_generations();
  EXPECT_GT(store.current_pages(0), 0u);  // something was spilled

  std::uint64_t total = 0;
  std::map<std::uint32_t, std::uint32_t> next_payload;  // per dst, expected
  for (IntervalId i = 0; i < iv.count(); ++i) {
    for (const auto& rec : load_records(store, i)) {
      // Messages to one destination arrive in append order.
      auto [it, inserted] = next_payload.try_emplace(rec.dst, rec.dst);
      EXPECT_EQ(rec.payload, it->second) << "dst " << rec.dst;
      it->second += 10;
      ++total;
    }
  }
  EXPECT_EQ(total, kN);
}

TEST(MultiLogStore, RecordsMayStraddlePages) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(4, 4);
  // 12-byte records do not divide the 4096-byte page.
  struct Wide {
    std::uint32_t a, b;
  };
  MultiLogStore store(env.storage, "t", iv,
                      {.record_size = sizeof(Record<Wide>)});
  constexpr std::uint32_t kN = 3000;
  for (std::uint32_t k = 0; k < kN; ++k) {
    append_record<Wide>(store, k % 4, {k, k * 2});
  }
  store.swap_generations();
  std::uint64_t seen = 0;
  std::vector<std::byte> bytes;
  store.load_interval(0, bytes);
  for (const auto& rec : decode_records<Wide>(bytes)) {
    EXPECT_EQ(rec.payload.b, rec.payload.a * 2);
    ++seen;
  }
  EXPECT_EQ(seen, store.current_count(0));
}

TEST(MultiLogStore, ConcurrentAppendsPreserveEveryMessage) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(64, 8);
  MultiLogStore store(env.storage, "t", iv, {.record_size = 8});
  constexpr int kThreads = 8, kPerThread = 5000;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([&, t] {
        SplitMix64 rng(static_cast<std::uint64_t>(t) + 1);
        for (int k = 0; k < kPerThread; ++k) {
          const auto dst = static_cast<VertexId>(rng.next_below(64));
          append_record<std::uint32_t>(store, dst,
                                       static_cast<std::uint32_t>(t));
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  store.swap_generations();
  EXPECT_EQ(store.total_current_count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t decoded = 0;
  for (IntervalId i = 0; i < iv.count(); ++i) {
    decoded += load_records(store, i).size();
  }
  EXPECT_EQ(decoded, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MultiLogStore, ConcurrentAppendsWithBackgroundEviction) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(64, 8);
  ssd::AsyncIo io(4);
  // Tiny eviction batches so the test exercises many background writes.
  MultiLogStore store(env.storage, "t", iv,
                      {.record_size = 8, .evict_batch_pages = 2,
                       .async_io = &io});
  constexpr int kThreads = 8, kPerThread = 5000;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([&, t] {
        SplitMix64 rng(static_cast<std::uint64_t>(t) + 1);
        for (int k = 0; k < kPerThread; ++k) {
          const auto dst = static_cast<VertexId>(rng.next_below(64));
          append_record<std::uint32_t>(
              store, dst, static_cast<std::uint32_t>(t * kPerThread + k));
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  store.swap_generations();

  // Replay the same per-thread RNG streams to build the expected multiset
  // per destination, then compare against what the logs actually hold.
  std::map<VertexId, std::multiset<std::uint32_t>> expected;
  for (int t = 0; t < kThreads; ++t) {
    SplitMix64 rng(static_cast<std::uint64_t>(t) + 1);
    for (int k = 0; k < kPerThread; ++k) {
      const auto dst = static_cast<VertexId>(rng.next_below(64));
      expected[dst].insert(static_cast<std::uint32_t>(t * kPerThread + k));
    }
  }
  std::map<VertexId, std::multiset<std::uint32_t>> actual;
  for (IntervalId i = 0; i < iv.count(); ++i) {
    for (const auto& rec : load_records(store, i)) {
      EXPECT_GE(rec.dst, iv.begin(i));
      EXPECT_LT(rec.dst, iv.end(i));
      actual[rec.dst].insert(rec.payload);
    }
  }
  EXPECT_EQ(actual, expected);
}

TEST(MultiLogStore, BackgroundEvictionMatchesInlineLayout) {
  // Offsets (and so page numbers) are assigned synchronously even when the
  // data is written by I/O threads, so a single-threaded append sequence
  // must yield byte-identical logs and identical page accounting either way.
  Env inline_env;
  Env async_env;
  ssd::AsyncIo io(2);
  const auto iv = graph::VertexIntervals::uniform(40, 4);
  MultiLogStore inline_store(inline_env.storage, "t", iv,
                             {.record_size = 8, .evict_batch_pages = 2});
  MultiLogStore async_store(async_env.storage, "t", iv,
                            {.record_size = 8, .evict_batch_pages = 2,
                             .async_io = &io});
  SplitMix64 rng(7);
  for (std::uint32_t k = 0; k < 30000; ++k) {
    const auto dst = static_cast<VertexId>(rng.next_below(40));
    append_record<std::uint32_t>(inline_store, dst, k);
    append_record<std::uint32_t>(async_store, dst, k);
  }
  inline_store.swap_generations();
  async_store.swap_generations();
  for (IntervalId i = 0; i < iv.count(); ++i) {
    std::vector<std::byte> a;
    std::vector<std::byte> b;
    inline_store.load_interval(i, a);
    async_store.load_interval(i, b);
    EXPECT_EQ(a, b) << "interval " << i;
  }
  const auto a_io = inline_env.storage.stats().snapshot();
  const auto b_io = async_env.storage.stats().snapshot();
  EXPECT_EQ(a_io.total_pages_written(), b_io.total_pages_written());
  EXPECT_EQ(a_io.total_pages_read(), b_io.total_pages_read());
}

TEST(MultiLogStore, DrainProduceForAsyncMode) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(20, 10);
  MultiLogStore store(env.storage, "t", iv, {.record_size = 8});
  for (std::uint32_t k = 0; k < 1000; ++k) {
    append_record<std::uint32_t>(store, 15, k);  // interval 1
  }
  std::vector<std::byte> bytes;
  const auto drained = store.drain_produce_interval(1, bytes);
  EXPECT_EQ(drained, 1000u);
  EXPECT_EQ(decode_records<std::uint32_t>(bytes).size(), 1000u);
  EXPECT_EQ(store.produced_count(1), 0u);
  // Drained messages must not reappear after the swap.
  store.swap_generations();
  EXPECT_EQ(store.current_count(1), 0u);
}

TEST(MultiLogStore, BatchedEvictionKeepsAccountingExact) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(16, 4);
  MultiLogConfig cfg{.record_size = 8};
  cfg.evict_batch_pages = 8;
  MultiLogStore store(env.storage, "t", iv, cfg);
  for (std::uint32_t k = 0; k < 40000; ++k) {
    append_record<std::uint32_t>(store, k % 16, k);
  }
  store.swap_generations();
  std::uint64_t total = 0;
  for (IntervalId i = 0; i < iv.count(); ++i) {
    total += load_records(store, i).size();
  }
  EXPECT_EQ(total, 40000u);
}

TEST(MultiLogStore, FlushedPagesHoldWholeRecords) {
  // 12-byte records don't divide the 4096-byte page; each flushed page must
  // hold floor(4096/12) = 341 whole records with a zero slack tail, so a
  // single page decodes cleanly on its own (no split record at the seam).
  Env env;
  const auto iv = graph::VertexIntervals::uniform(4, 4);  // one interval
  struct Wide {
    std::uint32_t a, b;
  };
  MultiLogStore store(env.storage, "t", iv,
                      {.record_size = sizeof(Record<Wide>)});
  EXPECT_EQ(store.usable_page_bytes(), (4096u / 12u) * 12u);
  constexpr std::uint32_t kN = 1000;
  for (std::uint32_t k = 0; k < kN; ++k) {
    append_record<Wide>(store, k % 4, {k, k * 2});
  }
  store.swap_generations();
  const std::uint64_t per_page = store.usable_page_bytes() / 12;
  EXPECT_EQ(store.current_pages(0), kN / per_page);
  // Read one raw flushed page straight from the generation blob (the first
  // produce generation is named t/log_gen0) and decode it in isolation.
  ssd::Blob& blob = env.storage.open_blob("t/log_gen0");
  EXPECT_EQ(blob.size(), store.current_pages(0) * 4096u);
  std::vector<std::byte> page(store.usable_page_bytes());
  blob.read(0, page.data(), page.size());
  const auto recs = decode_records<Wide>(page);
  ASSERT_EQ(recs.size(), per_page);
  for (std::uint32_t j = 0; j < recs.size(); ++j) {
    EXPECT_EQ(recs[j].dst, j % 4);
    EXPECT_EQ(recs[j].payload.a, j);
    EXPECT_EQ(recs[j].payload.b, j * 2);
  }
}

TEST(MultiLogStore, StagedAppendMatchesLockedPath) {
  // One thread, staging on vs off: per-interval logs must be byte-identical
  // (a single producer's flush order is its append order).
  Env locked_env;
  Env staged_env;
  const auto iv = graph::VertexIntervals::uniform(64, 8);
  MultiLogStore locked(locked_env.storage, "t", iv, {.record_size = 8});
  MultiLogStore staged(staged_env.storage, "t", iv,
                       {.record_size = 8, .staging_records = 7});
  auto staging = staged.make_staging();
  SplitMix64 rng(11);
  for (std::uint32_t k = 0; k < 20000; ++k) {
    const auto dst = static_cast<VertexId>(rng.next_below(64));
    append_record<std::uint32_t>(locked, dst, k);
    append_record_staged<std::uint32_t>(staged, staging, dst, k);
  }
  staged.flush_staging(staging);
  EXPECT_GT(staging.flush_count(), 0u);
  EXPECT_GE(staging.stall_seconds(), 0.0);
  locked.swap_generations();
  staged.swap_generations();
  for (IntervalId i = 0; i < iv.count(); ++i) {
    std::vector<std::byte> a;
    std::vector<std::byte> b;
    locked.load_interval(i, a);
    staged.load_interval(i, b);
    EXPECT_EQ(a, b) << "interval " << i;
    EXPECT_EQ(locked.current_pages(i), staged.current_pages(i));
  }
}

TEST(MultiLogStore, StagedRecordsInvisibleUntilFlushed) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(20, 10);
  MultiLogStore store(env.storage, "t", iv,
                      {.record_size = 8, .staging_records = 1024});
  auto staging = store.make_staging();
  for (std::uint32_t k = 0; k < 100; ++k) {
    append_record_staged<std::uint32_t>(store, staging, 15, k);  // interval 1
  }
  EXPECT_EQ(store.produced_count(1), 0u);  // parked in the staging buffer
  EXPECT_FALSE(staging.empty());
  store.flush_staging(staging);
  EXPECT_EQ(store.produced_count(1), 100u);
  EXPECT_TRUE(staging.empty());
  EXPECT_EQ(staging.flush_count(), 1u);  // one chunk, one lock take
}

TEST(MultiLogStore, StagingDepthZeroDegradesToLockedAppend) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(20, 10);
  MultiLogStore store(env.storage, "t", iv, {.record_size = 8});
  auto staging = store.make_staging();
  append_record_staged<std::uint32_t>(store, staging, 15, 1);
  EXPECT_EQ(store.produced_count(1), 1u);  // no staging: visible immediately
  EXPECT_EQ(staging.flush_count(), 0u);
  store.flush_staging(staging);  // no-op
  EXPECT_EQ(store.produced_count(1), 1u);
}

TEST(MultiLogStore, DiscardedStagingNeverFlushes) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(20, 10);
  MultiLogStore store(env.storage, "t", iv,
                      {.record_size = 8, .staging_records = 64});
  auto staging = store.make_staging();
  append_record_staged<std::uint32_t>(store, staging, 3, 7);
  staging.discard();
  store.flush_staging(staging);
  EXPECT_EQ(store.produced_count(0), 0u);
}

TEST(MultiLogStore, StagedAppendsWithConcurrentDrainsMatchOracle) {
  // The §V.F concurrency surface under worst-case staging: N producers with
  // tiny (2-record) staging buffers and background eviction race a drainer
  // that empties random produce intervals, across several generation swaps.
  // Every message must land exactly once — in a drain or in the swapped-in
  // log — matching a single-threaded replay of the producers' RNG streams.
  Env env;
  const auto iv = graph::VertexIntervals::uniform(64, 8);
  ssd::AsyncIo io(2);
  MultiLogStore store(env.storage, "t", iv,
                      {.record_size = 8, .staging_records = 2,
                       .evict_batch_pages = 2, .async_io = &io});
  constexpr int kThreads = 4, kPerThread = 3000, kRounds = 3;
  const auto payload = [](int round, int t, int k) {
    return static_cast<std::uint32_t>((round * kThreads + t) * kPerThread + k);
  };
  const auto thread_seed = [](int round, int t) {
    return static_cast<std::uint64_t>(round * kThreads + t + 1);
  };

  std::map<VertexId, std::multiset<std::uint32_t>> actual;
  std::vector<std::byte> drained;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<bool> stop{false};
    std::thread drainer([&] {
      SplitMix64 rng(static_cast<std::uint64_t>(997 + round));
      while (!stop.load(std::memory_order_relaxed)) {
        store.drain_produce_interval(
            static_cast<IntervalId>(rng.next_below(iv.count())), drained);
      }
    });
    {
      ThreadPool pool(kThreads);
      std::vector<std::future<void>> futures;
      for (int t = 0; t < kThreads; ++t) {
        futures.push_back(pool.submit([&, t] {
          auto staging = store.make_staging();
          SplitMix64 rng(thread_seed(round, t));
          for (int k = 0; k < kPerThread; ++k) {
            const auto dst = static_cast<VertexId>(rng.next_below(64));
            append_record_staged<std::uint32_t>(store, staging, dst,
                                                payload(round, t, k));
          }
          store.flush_staging(staging);
        }));
      }
      for (auto& f : futures) f.get();
    }
    stop.store(true, std::memory_order_relaxed);
    drainer.join();
    // Whatever the drains missed rides the swap into the current generation.
    store.swap_generations();
    for (IntervalId i = 0; i < iv.count(); ++i) {
      for (const auto& rec : load_records(store, i)) {
        EXPECT_GE(rec.dst, iv.begin(i));
        EXPECT_LT(rec.dst, iv.end(i));
        actual[rec.dst].insert(rec.payload);
      }
    }
    store.swap_generations();  // discard the consumed generation
  }
  for (const auto& rec : decode_records<std::uint32_t>(drained)) {
    actual[rec.dst].insert(rec.payload);
  }

  std::map<VertexId, std::multiset<std::uint32_t>> expected;
  for (int round = 0; round < kRounds; ++round) {
    for (int t = 0; t < kThreads; ++t) {
      SplitMix64 rng(thread_seed(round, t));
      for (int k = 0; k < kPerThread; ++k) {
        const auto dst = static_cast<VertexId>(rng.next_below(64));
        expected[dst].insert(payload(round, t, k));
      }
    }
  }
  EXPECT_EQ(actual, expected);
}

TEST(MultiLogStore, RejectsBadRecordGeometry) {
  Env env;
  const auto iv = graph::VertexIntervals::uniform(4, 4);
  EXPECT_THROW(MultiLogStore(env.storage, "t", iv, {.record_size = 2}),
               Error);
  EXPECT_THROW(MultiLogStore(env.storage, "t", iv, {.record_size = 8_KiB}),
               Error);
}

// ---- sort & group ----------------------------------------------------------

TEST(SortGroup, SortsByDestination) {
  std::vector<TestRecord> records = {{5, 1}, {2, 2}, {5, 3}, {1, 4}};
  sort_records(records);
  EXPECT_EQ(records[0].dst, 1u);
  EXPECT_EQ(records[1].dst, 2u);
  EXPECT_EQ(records[2].dst, 5u);
  EXPECT_EQ(records[3].dst, 5u);
}

TEST(SortGroup, GroupsAreContiguousAndComplete) {
  std::vector<TestRecord> records;
  SplitMix64 rng(8);
  std::map<VertexId, std::size_t> expected;
  for (int i = 0; i < 10000; ++i) {
    const auto dst = static_cast<VertexId>(rng.next_below(100));
    records.push_back({dst, 0});
    ++expected[dst];
  }
  sort_records(records);
  std::map<VertexId, std::size_t> seen;
  for_each_group(std::span<const TestRecord>(records),
                 [&](VertexId dst, std::span<const TestRecord> group) {
                   EXPECT_EQ(seen.count(dst), 0u) << "group visited twice";
                   seen[dst] = group.size();
                 });
  EXPECT_EQ(seen, expected);
}

TEST(SortGroup, GroupOffsetsMatchForEachGroup) {
  std::vector<TestRecord> records = {{1, 0}, {1, 0}, {3, 0}, {7, 0}, {7, 0}};
  const auto offsets = group_offsets(std::span<const TestRecord>(records));
  EXPECT_EQ(offsets, (std::vector<std::size_t>{0, 2, 3, 5}));
}

TEST(SortGroup, GroupOffsetsEmpty) {
  std::vector<TestRecord> records;
  const auto offsets = group_offsets(std::span<const TestRecord>(records));
  EXPECT_EQ(offsets, std::vector<std::size_t>{0});
}

TEST(SortGroup, CombineSumsPerDestination) {
  std::vector<TestRecord> records = {{1, 10}, {1, 20}, {2, 5}, {3, 1}, {3, 2}};
  const auto n = combine_sorted(
      records, [](std::uint32_t a, std::uint32_t b) { return a + b; });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(records[0].payload, 30u);
  EXPECT_EQ(records[1].payload, 5u);
  EXPECT_EQ(records[2].payload, 3u);
}

/// Property: processing with combine on or off gives the same per-vertex
/// reduction for an associative+commutative operator.
class CombineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CombineEquivalence, SumsMatch) {
  SplitMix64 rng(GetParam());
  std::vector<TestRecord> records;
  for (int i = 0; i < 5000; ++i) {
    records.push_back({static_cast<VertexId>(rng.next_below(64)),
                       static_cast<std::uint32_t>(rng.next_below(100))});
  }
  auto combined = records;
  sort_records(records);
  sort_records(combined);
  combine_sorted(combined,
                 [](std::uint32_t a, std::uint32_t b) { return a + b; });

  std::map<VertexId, std::uint64_t> by_group;
  for_each_group(std::span<const TestRecord>(records),
                 [&](VertexId dst, std::span<const TestRecord> group) {
                   std::uint64_t sum = 0;
                   for (const auto& r : group) sum += r.payload;
                   by_group[dst] = sum;
                 });
  for (const auto& rec : combined) {
    EXPECT_EQ(by_group.at(rec.dst), rec.payload);
  }
  EXPECT_EQ(combined.size(), by_group.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombineEquivalence,
                         ::testing::Values(3, 6, 9, 12));

// ---- ActiveSet -------------------------------------------------------------

TEST(ActiveSet, ActivateAndRange) {
  ActiveSet set(100);
  set.activate(5);
  set.activate(50);
  set.activate(95);
  EXPECT_TRUE(set.is_active(5));
  EXPECT_FALSE(set.is_active(6));
  EXPECT_EQ(set.count(), 3u);
  EXPECT_EQ(set.active_in_range(0, 60),
            (std::vector<VertexId>{5, 50}));
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(ActiveSet, ConcurrentActivation) {
  ActiveSet set(10000);
  parallel_for(0, 10000, [&](int i) {
    if (i % 3 == 0) set.activate(static_cast<VertexId>(i));
  });
  EXPECT_EQ(set.count(), (10000 + 2) / 3);
}

// ---- HistoryPredictor ------------------------------------------------------

TEST(Predictor, DepthOneUsesLastSuperstepOnly) {
  HistoryPredictor pred(10, 1);
  DynamicBitset a(10);
  a.set(3);
  pred.observe(a);
  EXPECT_TRUE(pred.predict_active(3));
  EXPECT_FALSE(pred.predict_active(4));

  DynamicBitset b(10);
  b.set(4);
  pred.observe(b);  // depth 1: superstep with vertex 3 forgotten
  EXPECT_FALSE(pred.predict_active(3));
  EXPECT_TRUE(pred.predict_active(4));
}

TEST(Predictor, DeeperHistoryRemembersLonger) {
  HistoryPredictor pred(10, 3);
  DynamicBitset a(10);
  a.set(1);
  pred.observe(a);
  DynamicBitset empty(10);
  pred.observe(empty);
  pred.observe(empty);
  EXPECT_TRUE(pred.predict_active(1));
  pred.observe(empty);
  EXPECT_FALSE(pred.predict_active(1));
}

TEST(Predictor, DepthZeroNeverPredicts) {
  HistoryPredictor pred(10, 0);
  DynamicBitset a(10);
  a.set_all();
  pred.observe(a);
  EXPECT_FALSE(pred.predict_active(0));
}

TEST(Predictor, ScoreComputesRecall) {
  HistoryPredictor pred(10, 1);
  DynamicBitset prev(10);
  prev.set(1);
  prev.set(2);
  pred.observe(prev);
  DynamicBitset actual(10);
  actual.set(2);
  actual.set(3);
  const auto acc = pred.score(actual);
  EXPECT_EQ(acc.active, 2u);
  EXPECT_EQ(acc.predicted_and_active, 1u);
  EXPECT_DOUBLE_EQ(acc.recall(), 0.5);
}

// ---- PageUtilTracker -------------------------------------------------------

TEST(PageUtil, ClassifiesInefficientPages) {
  PageUtilTracker tracker(4096, 0.10);
  tracker.record(1, 0, 100);    // 2.4% -> inefficient
  tracker.record(1, 1, 2000);   // 48%  -> fine
  tracker.record(1, 2, 300);    // 7.3% -> inefficient
  const auto s = tracker.finish_superstep();
  EXPECT_EQ(s.pages_touched, 3u);
  EXPECT_EQ(s.pages_inefficient, 2u);
  EXPECT_DOUBLE_EQ(s.inefficient_fraction(), 2.0 / 3.0);
}

TEST(PageUtil, AccumulatesWithinSuperstep) {
  PageUtilTracker tracker(4096, 0.10);
  tracker.record(1, 0, 200);
  tracker.record(1, 0, 300);  // same page: 500 bytes total -> 12%, fine
  const auto s = tracker.finish_superstep();
  EXPECT_EQ(s.pages_inefficient, 0u);
}

TEST(PageUtil, PredictsFromPreviousSuperstep) {
  PageUtilTracker tracker(4096, 0.10);
  tracker.record(1, 7, 50);
  tracker.finish_superstep();
  EXPECT_TRUE(tracker.was_inefficient(1, 7));
  EXPECT_FALSE(tracker.was_inefficient(1, 8));

  tracker.record(1, 7, 60);  // inefficient again
  tracker.record(1, 9, 10);  // new inefficient page, not predicted
  const auto s = tracker.finish_superstep();
  EXPECT_EQ(s.pages_inefficient, 2u);
  EXPECT_EQ(s.inefficient_predicted, 1u);
  EXPECT_DOUBLE_EQ(s.prediction_recall(), 0.5);
}

}  // namespace
}  // namespace mlvc::multilog
