// Checkpoint / rollback tests: a run interrupted mid-way and resumed from a
// checkpoint must finish with exactly the results of an uninterrupted run.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

graph::CsrGraph ckpt_graph(std::uint64_t seed = 61) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 5;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

template <core::VertexApp App>
struct Rig {
  ssd::TempDir dir;
  ssd::Storage storage;
  core::EngineOptions opts;
  graph::StoredCsrGraph stored;
  core::MultiLogVCEngine<App> engine;

  Rig(const graph::CsrGraph& csr, App app, Superstep max_steps)
      : storage(dir.path(),
                [] {
                  ssd::DeviceConfig d;
                  d.page_size = 4_KiB;
                  return d;
                }()),
        opts([max_steps] {
          auto o = testing_options();
          o.max_supersteps = max_steps;
          return o;
        }()),
        stored(storage, "g", csr, core::partition_for_app<App>(csr, opts)),
        engine(stored, app, opts) {}
};

TEST(Checkpoint, ResumeMatchesUninterruptedRun) {
  const auto csr = ckpt_graph();
  apps::Cdlp app;

  // Uninterrupted reference run.
  Rig<apps::Cdlp> ref(csr, app, 15);
  ref.engine.run();
  const auto expected = ref.engine.values();

  // Interrupted run: checkpoint after 3 supersteps, keep going to 7, then
  // roll back and resume to completion.
  Rig<apps::Cdlp> rig(csr, app, 15);
  int steps = 0;
  rig.engine.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 3; });
  rig.engine.save_checkpoint("at3");
  steps = 0;
  rig.engine.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 4; });
  rig.engine.load_checkpoint("at3");
  rig.engine.run();

  EXPECT_EQ(rig.engine.values(), expected);
}

TEST(Checkpoint, RollbackRestoresMidRunState) {
  const auto csr = ckpt_graph(62);
  apps::Bfs app{.source = 0};

  Rig<apps::Bfs> rig(csr, app, 50);
  int steps = 0;
  rig.engine.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 2; });
  rig.engine.save_checkpoint("early");
  const auto at_checkpoint = rig.engine.values();

  // Let the run finish, then roll back: values must equal the snapshot.
  rig.engine.run();
  const auto finished = rig.engine.values();
  EXPECT_NE(finished, at_checkpoint);  // progress happened after checkpoint

  rig.engine.load_checkpoint("early");
  EXPECT_EQ(rig.engine.values(), at_checkpoint);

  // And resuming again still converges to the correct answer.
  rig.engine.run();
  const auto expected = reference::bfs_distances(csr, 0);
  const auto resumed = rig.engine.values();
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(resumed[v], expected[v]) << "vertex " << v;
  }
}

TEST(Checkpoint, PendingMessagesSurvive) {
  // Checkpoint taken when logs are at their fattest (right after the first
  // all-active superstep of CDLP): the restored run must consume exactly
  // those messages.
  const auto csr = ckpt_graph(63);
  apps::Cdlp app;
  Rig<apps::Cdlp> rig(csr, app, 15);
  int steps = 0;
  rig.engine.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 1; });
  rig.engine.save_checkpoint("fat");
  rig.engine.load_checkpoint("fat");
  const auto stats = rig.engine.run();
  // RunStats accumulates across the partial and resumed runs: entry 0 is
  // the pre-checkpoint superstep 0, entry 1 the first resumed superstep.
  ASSERT_GE(stats.supersteps.size(), 2u);
  EXPECT_EQ(stats.supersteps[1].superstep, 1u);
  // The first resumed superstep consumes the checkpointed log (every vertex
  // announced its label in superstep 0).
  EXPECT_GT(stats.supersteps[1].messages_consumed, 0u);

  Rig<apps::Cdlp> ref(csr, app, 15);
  ref.engine.run();
  EXPECT_EQ(rig.engine.values(), ref.engine.values());
}

TEST(Checkpoint, BadBlobRejected) {
  const auto csr = ckpt_graph(64);
  apps::Bfs app{.source = 0};
  Rig<apps::Bfs> rig(csr, app, 10);
  rig.engine.run();
  EXPECT_THROW(rig.engine.load_checkpoint("never_saved"), Error);
  auto& blob =
      rig.storage.create_blob("mlvc/ckpt_garbage", ssd::IoCategory::kMisc);
  const std::uint32_t junk = 0xBADC0DE;
  blob.append(&junk, 4);
  EXPECT_THROW(rig.engine.load_checkpoint("garbage"), Error);
}

}  // namespace
}  // namespace mlvc
