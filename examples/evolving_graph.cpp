// An evolving graph (§V.E): structural updates without rebuilding the CSR.
//
// MultiLogVC partitions the stored CSR by vertex interval precisely so that
// edge insertions/removals only ever rewrite one interval's vectors — and
// even that is amortized by batching. This example simulates a social
// network receiving batches of new friendships: after each batch, connected
// components are recomputed over the *same* stored graph.
#include <iostream>
#include <map>

#include "apps/wcc.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace {

std::size_t count_components(const std::vector<mlvc::VertexId>& labels) {
  std::map<mlvc::VertexId, std::size_t> sizes;
  for (auto l : labels) ++sizes[l];
  return sizes.size();
}

}  // namespace

int main() {
  using namespace mlvc;

  // Ten disconnected communities of 2,000 members each.
  graph::EdgeList list;
  constexpr VertexId kBlock = 2000;
  constexpr int kBlocks = 10;
  list.set_num_vertices(kBlock * kBlocks);
  SplitMix64 rng(17);
  for (int b = 0; b < kBlocks; ++b) {
    for (int e = 0; e < 6000; ++e) {
      const auto u =
          b * kBlock + static_cast<VertexId>(rng.next_below(kBlock));
      const auto v =
          b * kBlock + static_cast<VertexId>(rng.next_below(kBlock));
      if (u != v) list.add(u, v);
    }
  }
  list.set_num_vertices(kBlock * kBlocks);
  list.make_undirected();
  const auto csr = graph::CsrGraph::from_edge_list(list);

  core::EngineOptions options;
  options.memory_budget_bytes = 2_MiB;
  options.max_supersteps = 60;

  ssd::TempDir workdir("evolving");
  ssd::Storage storage(workdir.path());
  graph::StoredCsrGraph stored(
      storage, "social", csr,
      core::partition_for_app<apps::Wcc>(csr, options),
      {.with_weights = false, .merge_threshold = 64});

  std::cout << "initial graph: " << format_count(csr.num_vertices())
            << " members, " << format_count(csr.num_edges())
            << " friendships\n\n";

  const auto recount = [&]() {
    core::MultiLogVCEngine<apps::Wcc> engine(stored, apps::Wcc{}, options);
    engine.run();
    return count_components(engine.values());
  };

  std::cout << "components before any new friendships: " << recount()
            << "\n";

  // Each round, a few new cross-community friendships arrive as structural
  // updates. Most stay buffered; the merge threshold triggers interval
  // rewrites only when batches accumulate — the loader overlays pending
  // updates in the meantime, so results are always current.
  for (int round = 1; round <= 3; ++round) {
    for (int k = 0; k < 3 * round; ++k) {
      const auto u = static_cast<VertexId>(rng.next_below(kBlock * kBlocks));
      const auto v = static_cast<VertexId>(rng.next_below(kBlock * kBlocks));
      if (u == v) continue;
      stored.buffer_update(
          {graph::StructuralUpdate::Kind::kAddEdge, u, v, 1.0f});
      stored.buffer_update(
          {graph::StructuralUpdate::Kind::kAddEdge, v, u, 1.0f});
    }
    std::size_t pending = 0;
    for (IntervalId i = 0; i < stored.intervals().count(); ++i) {
      pending += stored.pending_update_count(i);
    }
    std::cout << "round " << round << ": graph now has "
              << format_count(stored.num_edges()) << " stored edges (+"
              << pending << " buffered updates), components: " << recount()
              << "\n";
  }

  // Force-merge everything and confirm nothing changes observably.
  for (IntervalId i = 0; i < stored.intervals().count(); ++i) {
    stored.merge_interval(i);
  }
  std::cout << "after merging all buffered updates: "
            << format_count(stored.num_edges())
            << " stored edges, components: " << recount() << "\n";
  return 0;
}
