// Writing your own vertex program: connected components by label spreading.
//
// An application is a plain struct satisfying the core::VertexApp concept:
//   - Value / Message types (trivially copyable),
//   - kHasCombine / kNeedsWeights flags (+ combine() when kHasCombine),
//   - initial_value / initially_active,
//   - a templated process(ctx, msgs).
// The same struct runs unmodified on MultiLogVC, GraphChi, and GraFBoost.
#include <iostream>
#include <map>

#include "common/format.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace {

using namespace mlvc;

/// Connected components: every vertex adopts the minimum label it has ever
/// heard; labels converge to the component's minimum vertex id. min is
/// associative and commutative, so a combine operator is provided and the
/// engine's §V.D optimization path kicks in automatically.
struct ConnectedComponents {
  using Value = VertexId;
  using Message = VertexId;
  static constexpr bool kHasCombine = true;
  static constexpr bool kNeedsWeights = false;

  const char* name() const { return "connected_components"; }
  Message combine(const Message& a, const Message& b) const {
    return a < b ? a : b;
  }
  Value initial_value(VertexId v) const { return v; }
  bool initially_active(VertexId) const { return true; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    VertexId best = ctx.value();
    for (const Message& m : msgs) best = std::min(best, m);
    if (ctx.superstep() == 0 || best < ctx.value()) {
      ctx.set_value(best);
      ctx.send_to_all_neighbors(best);
    }
    ctx.deactivate();  // woken again only by a smaller label
  }
};

}  // namespace

int main() {
  // A deliberately fragmented graph: many disjoint Erdős–Rényi blobs.
  graph::EdgeList list;
  constexpr VertexId kBlock = 1000;
  constexpr int kBlocks = 24;
  list.set_num_vertices(kBlock * kBlocks);
  SplitMix64 rng(3);
  for (int b = 0; b < kBlocks; ++b) {
    const VertexId base = b * kBlock;
    for (int e = 0; e < 3000; ++e) {
      const auto u = base + static_cast<VertexId>(rng.next_below(kBlock));
      const auto v = base + static_cast<VertexId>(rng.next_below(kBlock));
      if (u != v) list.add(u, v);
    }
  }
  list.set_num_vertices(kBlock * kBlocks);
  list.make_undirected();
  const auto csr = graph::CsrGraph::from_edge_list(list);

  core::EngineOptions options;
  options.memory_budget_bytes = 2_MiB;
  options.max_supersteps = 100;

  ssd::TempDir workdir("components");
  ssd::Storage storage(workdir.path());
  graph::StoredCsrGraph stored(
      storage, "cc", csr,
      core::partition_for_app<ConnectedComponents>(csr, options));
  core::MultiLogVCEngine<ConnectedComponents> engine(stored,
                                                     ConnectedComponents{},
                                                     options);
  const auto stats = engine.run();

  std::map<VertexId, std::size_t> components;
  for (VertexId label : engine.values()) ++components[label];
  std::cout << "graph: " << format_count(csr.num_vertices()) << " vertices, "
            << format_count(csr.num_edges()) << " edges\n"
            << "found " << components.size() << " connected components in "
            << stats.supersteps.size() << " supersteps (expected ~"
            << kBlocks << " plus isolated vertices)\n";
  std::size_t giant = 0;
  for (const auto& [label, size] : components) giant = std::max(giant, size);
  std::cout << "largest component: " << format_count(giant) << " vertices\n";
  return 0;
}
