// Quickstart: the smallest complete MultiLogVC program.
//
//   1. build (or load) a graph,
//   2. materialize it as an on-storage partitioned CSR,
//   3. run a vertex-centric application,
//   4. read results and I/O statistics.
//
// Build & run:   ./examples/quickstart
#include <iostream>

#include "apps/bfs.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace mlvc;

  // 1. A synthetic power-law graph (use graph::load_snap_edge_list for a
  //    real SNAP dataset).
  graph::RmatParams params;
  params.scale = 14;       // 16k vertices
  params.edge_factor = 8;  // ~256k directed edges after mirroring
  params.seed = 7;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(params));
  std::cout << "graph: " << format_count(csr.num_vertices()) << " vertices, "
            << format_count(csr.num_edges()) << " edges\n";

  // 2. Storage: a directory of page-accounted blobs over a modeled SSD.
  ssd::TempDir workdir("quickstart");
  ssd::DeviceConfig device;  // 16 KiB pages, 8 channels by default
  ssd::Storage storage(workdir.path(), device);

  // Engine configuration: the host memory budget drives the vertex-interval
  // partitioning (§V.A.1 of the paper) and the Figure 4 buffer split.
  core::EngineOptions options;
  options.memory_budget_bytes = 8_MiB;
  options.max_supersteps = 50;

  graph::StoredCsrGraph stored(
      storage, "quickstart",  csr,
      core::partition_for_app<apps::Bfs>(csr, options));

  // 3. Run BFS from vertex 0.
  apps::Bfs bfs{.source = 0};
  core::MultiLogVCEngine<apps::Bfs> engine(stored, bfs, options);
  const auto stats = engine.run();

  // 4. Results.
  const auto distances = engine.values();
  std::size_t reached = 0;
  std::uint32_t max_distance = 0;
  for (auto d : distances) {
    if (d != apps::Bfs::kUnreached) {
      ++reached;
      max_distance = std::max(max_distance, d);
    }
  }
  std::cout << "BFS finished in " << stats.supersteps.size()
            << " supersteps: reached " << format_count(reached) << "/"
            << format_count(distances.size()) << " vertices, eccentricity "
            << max_distance << "\n";
  std::cout << "storage traffic: " << format_count(stats.total_pages_read())
            << " pages read, " << format_count(stats.total_pages_written())
            << " pages written, modeled device time "
            << format_fixed(stats.modeled_storage_seconds() * 1000, 2)
            << " ms\n";
  return 0;
}
