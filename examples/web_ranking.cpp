// Web page ranking on a web-scale-shaped graph — the paper's PageRank
// workload, including the §V.D combine optimization path and the §V.F
// asynchronous computation model.
#include <algorithm>
#include <iostream>

#include "apps/pagerank.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace {

mlvc::core::RunStats rank_once(const mlvc::graph::CsrGraph& csr,
                               mlvc::core::ComputationModel model,
                               std::vector<float>* out_ranks) {
  using namespace mlvc;
  core::EngineOptions options;
  options.memory_budget_bytes = 2_MiB;
  options.max_supersteps = 15;
  options.model = model;

  ssd::TempDir workdir("webrank");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  ssd::Storage storage(workdir.path(), device);
  graph::StoredCsrGraph stored(
      storage, "web", csr,
      core::partition_for_app<apps::PageRank>(csr, options));

  apps::PageRank pr;
  pr.threshold = 0.05f;  // tighter than the paper's 0.4 for a fuller ranking
  core::MultiLogVCEngine<apps::PageRank> engine(stored, pr, options);
  auto stats = engine.run();
  if (out_ranks != nullptr) *out_ranks = engine.values();
  return stats;
}

}  // namespace

int main() {
  using namespace mlvc;

  const auto csr =
      graph::CsrGraph::from_edge_list(graph::make_yws_like(/*scale=*/15));
  std::cout << "web graph: " << format_count(csr.num_vertices())
            << " pages, " << format_count(csr.num_edges())
            << " hyperlinks\n\n";

  std::vector<float> ranks;
  const auto sync_stats =
      rank_once(csr, core::ComputationModel::kSynchronous, &ranks);

  std::vector<VertexId> order(csr.num_vertices());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](VertexId a, VertexId b) { return ranks[a] > ranks[b]; });
  std::cout << "top pages by rank:\n";
  for (int i = 0; i < 10; ++i) {
    std::cout << "  #" << i + 1 << "  page " << order[i] << "  rank "
              << format_fixed(ranks[order[i]], 2) << "  (out-links "
              << csr.out_degree(order[i]) << ")\n";
  }

  std::cout << "\nsynchronous run:  " << sync_stats.supersteps.size()
            << " supersteps, " << format_count(sync_stats.total_pages())
            << " pages, "
            << format_fixed(sync_stats.modeled_total_seconds(), 3)
            << " s modeled\n";

  // §V.F asynchronous mode: updates produced earlier in a superstep can be
  // delivered to intervals processed later in the same superstep, typically
  // converging in fewer supersteps.
  const auto async_stats =
      rank_once(csr, core::ComputationModel::kAsynchronous, nullptr);
  std::cout << "asynchronous run: " << async_stats.supersteps.size()
            << " supersteps, " << format_count(async_stats.total_pages())
            << " pages, "
            << format_fixed(async_stats.modeled_total_seconds(), 3)
            << " s modeled\n";
  return 0;
}
