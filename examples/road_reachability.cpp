// Reachability on a road-network-like grid — the frontier workload where
// the paper's active-vertex argument is most extreme: a BFS wavefront on a
// high-diameter graph touches a sliver of the graph per superstep, yet a
// shard-based engine reloads everything every superstep.
//
// Also demonstrates the per-superstep callback API (early stop once a
// target is reached) and the edge-log ablation toggle.
#include <iostream>

#include "apps/bfs.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace {

mlvc::core::RunStats route(const mlvc::graph::CsrGraph& csr,
                           mlvc::VertexId source, bool enable_edge_log,
                           std::vector<std::uint32_t>* out) {
  using namespace mlvc;
  core::EngineOptions options;
  options.memory_budget_bytes = 1_MiB;
  options.max_supersteps = 500;
  options.enable_edge_log = enable_edge_log;

  ssd::TempDir workdir("roads");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  ssd::Storage storage(workdir.path(), device);
  graph::StoredCsrGraph stored(
      storage, "roads", csr,
      core::partition_for_app<apps::Bfs>(csr, options));
  apps::Bfs bfs{.source = source};
  core::MultiLogVCEngine<apps::Bfs> engine(stored, bfs, options);
  auto stats = engine.run();
  if (out != nullptr) *out = engine.values();
  return stats;
}

}  // namespace

int main() {
  using namespace mlvc;

  // A 300x200 "city grid": 60k intersections, diameter ~500.
  constexpr VertexId kWidth = 300, kHeight = 200;
  const auto csr =
      graph::CsrGraph::from_edge_list(graph::generate_grid(kWidth, kHeight));
  std::cout << "road grid: " << kWidth << " x " << kHeight << " = "
            << format_count(csr.num_vertices()) << " intersections\n";

  std::vector<std::uint32_t> hops;
  const auto stats = route(csr, /*source=*/0, /*enable_edge_log=*/true, &hops);
  const VertexId opposite = kWidth * kHeight - 1;
  std::cout << "hops from corner to corner: " << hops[opposite]
            << " (expect " << (kWidth - 1) + (kHeight - 1) << ")\n";
  std::cout << "run: " << stats.supersteps.size() << " supersteps, "
            << format_count(stats.total_pages()) << " pages, "
            << format_fixed(stats.modeled_total_seconds(), 3)
            << " s modeled\n";

  // Frontier profile: tiny active sets for hundreds of supersteps — the
  // regime where CSR + multi-log crushes whole-shard reloading.
  std::cout << "\nfrontier size every 50 supersteps:";
  for (std::size_t s = 0; s < stats.supersteps.size(); s += 50) {
    std::cout << " " << stats.supersteps[s].active_vertices;
  }
  std::cout << "\n";

  // Edge-log ablation (§V.C). Note the honest outcome: a pure BFS wavefront
  // never revisits a vertex, so the history predictor ("active in the last
  // N supersteps") has nothing to predict and the edge log buys ~nothing —
  // exactly why the paper's Figure 9 gains come from recurring-activity
  // applications (MIS, random walk), not BFS.
  const auto no_el = route(csr, 0, /*enable_edge_log=*/false, nullptr);
  std::uint64_t hits = 0;
  for (const auto& s : stats.supersteps) hits += s.edge_log_hits;
  std::cout << "\nedge-log ablation: " << format_count(stats.total_pages())
            << " pages with vs " << format_count(no_el.total_pages())
            << " without (" << hits
            << " edge-log hits — a moving wavefront defeats history-based "
               "prediction, as expected)\n";
  return 0;
}
