// Community detection on a social network — the paper's CDLP workload.
//
// Label propagation needs every incoming message individually (the label
// *mode* is not a mergeable reduction), which is exactly the application
// class MultiLogVC's no-merge multi-log exists for. This example detects
// communities on a friendster-like graph and prints the largest ones, then
// contrasts MultiLogVC's storage traffic with the GraphChi baseline's.
#include <algorithm>
#include <iostream>
#include <map>

#include "apps/cdlp.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graphchi/engine.hpp"

int main() {
  using namespace mlvc;

  const auto csr =
      graph::CsrGraph::from_edge_list(graph::make_cf_like(/*scale=*/14));
  std::cout << "social graph: " << format_count(csr.num_vertices())
            << " members, " << format_count(csr.num_edges())
            << " friendships\n";

  core::EngineOptions options;
  options.memory_budget_bytes = 2_MiB;
  options.max_supersteps = 15;  // the paper's cap

  ssd::TempDir workdir("communities");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  ssd::Storage storage(workdir.path(), device);
  graph::StoredCsrGraph stored(
      storage, "social", csr,
      core::partition_for_app<apps::Cdlp>(csr, options));

  apps::Cdlp cdlp;
  core::MultiLogVCEngine<apps::Cdlp> engine(stored, cdlp, options);
  const auto stats = engine.run();

  // Community sizes.
  const auto labels = engine.values();
  std::map<VertexId, std::size_t> sizes;
  for (VertexId label : labels) ++sizes[label];
  std::vector<std::pair<std::size_t, VertexId>> ranked;
  for (const auto& [label, size] : sizes) ranked.emplace_back(size, label);
  std::sort(ranked.rbegin(), ranked.rend());

  std::cout << "found " << format_count(sizes.size()) << " communities in "
            << stats.supersteps.size() << " supersteps; largest:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    std::cout << "  community " << ranked[i].second << ": "
              << format_count(ranked[i].first) << " members\n";
  }

  // The active set shrinks superstep over superstep — the effect Figure 2
  // of the paper is built on.
  std::cout << "\nactive vertices per superstep:";
  for (const auto& s : stats.supersteps) {
    std::cout << " " << s.active_vertices;
  }
  std::cout << "\n";

  // Baseline comparison on the same workload.
  ssd::TempDir gc_dir("communities_gc");
  ssd::Storage gc_storage(gc_dir.path(), device);
  graphchi::GraphChiOptions gc_options;
  gc_options.memory_budget_bytes = options.memory_budget_bytes;
  gc_options.max_supersteps = options.max_supersteps;
  graphchi::GraphChiEngine<apps::Cdlp> baseline(gc_storage, csr, cdlp,
                                                gc_options);
  const auto gc_stats = baseline.run();

  std::cout << "\nstorage pages, MultiLogVC vs GraphChi: "
            << format_count(stats.total_pages()) << " vs "
            << format_count(gc_stats.total_pages()) << "  ("
            << format_fixed(static_cast<double>(gc_stats.total_pages()) /
                                static_cast<double>(stats.total_pages()),
                            1)
            << "x reduction)\n";
  return 0;
}
